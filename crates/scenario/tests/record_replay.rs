//! Record → replay differential tests: a trace replayed through the same
//! machine/manager configuration reproduces the live run's report and
//! telemetry byte-for-byte, for any packet-engine worker count.

use mtm::{MtmConfig, MtmManager};
use mtm_scenario::trace::{record_run, TraceReplayer};
use mtm_scenario::{Serving, ServingConfig};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, RunReport, Workload};
use tiersim::tier::tiny_two_tier;
use tiersim::PAGE_SIZE_2M;

const INTERVALS: u64 = 6;

fn machine(run_workers: Option<usize>) -> Machine {
    let topo = tiny_two_tier(16 * PAGE_SIZE_2M, 96 * PAGE_SIZE_2M);
    let mut cfg = MachineConfig::new(topo, 2);
    cfg.interval_ns = 0.5e6;
    let mut m = Machine::new(cfg);
    if let Some(w) = run_workers {
        m.set_run_workers(w);
    }
    m
}

fn manager() -> MtmManager {
    MtmManager::new(MtmConfig::default(), 1)
}

/// Reports carry floats; Debug formatting is exact (no rounding), so
/// string equality is bit equality across every field.
fn fingerprint(r: &RunReport) -> String {
    format!("{r:?}\n{}", r.telemetry.to_json())
}

fn live_report(workload: Box<dyn Workload>) -> RunReport {
    let mut wl = workload;
    run_scenario(&mut machine(None), &mut manager(), wl.as_mut(), INTERVALS)
}

fn check_replay_matches_live(make: impl Fn() -> Box<dyn Workload>) {
    let live = live_report(make());

    let wl = make();
    let (recorded, trace) =
        record_run(&mut machine(None), &mut manager(), wl, INTERVALS).expect("recordable");
    assert_eq!(
        fingerprint(&recorded),
        fingerprint(&live),
        "recording must not perturb the run"
    );

    for workers in [None, Some(1), Some(4)] {
        let mut replayer = TraceReplayer::from_bytes(&trace).expect("trace decodes");
        let replayed =
            run_scenario(&mut machine(workers), &mut manager(), &mut replayer, INTERVALS);
        assert_eq!(
            fingerprint(&replayed),
            fingerprint(&live),
            "replay with run_workers={workers:?} must match the live run byte-for-byte"
        );
    }
}

#[test]
fn gups_replay_is_byte_identical() {
    check_replay_matches_live(|| {
        mtm_workloads::build_paper_workload("GUPS", 1 << 13, 2).expect("GUPS exists")
    });
}

#[test]
fn cassandra_replay_is_byte_identical() {
    check_replay_matches_live(|| {
        mtm_workloads::build_paper_workload("Cassandra", 1 << 13, 2).expect("Cassandra exists")
    });
}

#[test]
fn serving_generator_replay_is_byte_identical() {
    check_replay_matches_live(|| Box::new(Serving::new(ServingConfig::kv_drift(1 << 14, 2, 2))));
}

#[test]
fn trace_rejects_bad_magic_and_version() {
    let wl = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 2));
    let (_, trace) =
        record_run(&mut machine(None), &mut manager(), wl, 2).expect("recordable");
    let mut bad = trace.clone();
    bad[0] ^= 0xFF;
    let Err(e) = TraceReplayer::from_bytes(&bad) else { panic!("bad magic accepted") };
    assert!(e.contains("magic"), "unexpected error: {e}");
    let mut vbad = trace.clone();
    vbad[8] = 0xEE;
    let Err(e) = TraceReplayer::from_bytes(&vbad) else { panic!("bad version accepted") };
    assert!(e.contains("version"), "unexpected error: {e}");
}

#[test]
fn replay_on_mismatched_machine_panics_loudly() {
    let wl = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 2));
    let (_, trace) =
        record_run(&mut machine(None), &mut manager(), wl, 2).expect("recordable");
    let mut replayer = TraceReplayer::from_bytes(&trace).expect("trace decodes");
    let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M);
    let mut other = Machine::new(MachineConfig::new(topo, 2));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_scenario(&mut other, &mut manager(), &mut replayer, 1);
    }));
    assert!(err.is_err(), "mismatched machine config must not replay silently");
}
