//! Differential and determinism tests for the multi-tenant cell driver.
//!
//! The load-bearing claim: a 1-tenant cell is the *same computation* as
//! the legacy single-tenant path — arbitration at N=1 grants the full
//! machine, the full migration budget and a profile share of exactly
//! 1.0, all bit-exact identities. The tests here pin that, plus the
//! determinism contract (`MTM_JOBS` / `MTM_RUN_WORKERS` never change a
//! byte) and tenant-stream independence for same-named workloads.

use mtm::arbiter::ArbiterKind;
use mtm_harness::multitenant::{render, run_cell, tenant_specs};
use mtm_harness::resilience::RESILIENCE_MANAGERS;
use mtm_harness::runs::run_pair_with_faults;
use mtm_harness::Opts;

/// Tiny but real run options (same idiom as the parallel tests), with a
/// distinctive interval_ns so cache keys never collide across binaries.
fn tiny(intervals: u64) -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.threads = 2;
    o.intervals = intervals;
    o.interval_ns = 0.25e6 + intervals as f64;
    o
}

#[test]
fn single_tenant_cell_is_identical_to_the_legacy_path() {
    let opts = tiny(3);
    let specs = tenant_specs(1);
    for manager in RESILIENCE_MANAGERS {
        let legacy = run_pair_with_faults(manager, "GUPS", &opts, None);
        let mt = run_cell(
            manager,
            &specs,
            opts.scale,
            ArbiterKind::StaticEqual,
            "healthy",
            &opts,
            0,
            None,
            false,
        )
        .pop()
        .expect("one tenant, one report");
        assert_eq!(
            format!("{legacy:?}"),
            format!("{mt:?}"),
            "{manager}: 1-tenant cell diverges from run_scenario"
        );
        assert_eq!(
            legacy.telemetry.to_json(),
            mt.telemetry.to_json(),
            "{manager}: telemetry JSON diverges"
        );
    }
}

#[test]
fn single_tenant_identity_holds_for_every_arbiter() {
    let opts = tiny(2);
    let specs = tenant_specs(1);
    let legacy = run_pair_with_faults("MTM", "GUPS", &opts, None);
    for arbiter in [
        ArbiterKind::StaticEqual,
        ArbiterKind::FootprintProportional,
        ArbiterKind::HotnessWeighted,
    ] {
        let mt = run_cell("MTM", &specs, opts.scale, arbiter, "healthy", &opts, 0, None, false)
            .pop()
            .unwrap();
        assert_eq!(
            format!("{legacy:?}"),
            format!("{mt:?}"),
            "{}: solo arbitration is not the identity",
            arbiter.label()
        );
    }
}

#[test]
fn multitenant_table_is_identical_for_any_jobs_count() {
    // Sequential on purpose: MTM_JOBS is process-global, and this is the
    // only test in this binary that touches it.
    let opts = tiny(2);
    let counts = [2usize];
    let arbiters = [ArbiterKind::HotnessWeighted];
    std::env::set_var("MTM_JOBS", "1");
    let serial = render(&opts, &counts, &arbiters);
    std::env::set_var("MTM_JOBS", "4");
    let parallel = render(&opts, &counts, &arbiters);
    std::env::remove_var("MTM_JOBS");
    assert_eq!(serial, parallel, "multitenant table depends on the worker count");
    assert!(serial.contains("hotness-weighted"));
}

#[test]
fn multitenant_cell_is_identical_for_any_run_worker_count() {
    let opts = tiny(2);
    let specs = tenant_specs(2);
    let one = run_cell(
        "MTM",
        &specs,
        opts.scale * 2,
        ArbiterKind::FootprintProportional,
        "heavy",
        &opts,
        7,
        Some(1),
        false,
    );
    let four = run_cell(
        "MTM",
        &specs,
        opts.scale * 2,
        ArbiterKind::FootprintProportional,
        "heavy",
        &opts,
        7,
        Some(4),
        false,
    );
    assert_eq!(
        format!("{one:?}"),
        format!("{four:?}"),
        "cell reports depend on MTM_RUN_WORKERS"
    );
}

#[test]
fn checked_cell_matches_unchecked_and_passes_census() {
    let opts = tiny(2);
    let specs = tenant_specs(2);
    let plain = run_cell(
        "MTM",
        &specs,
        opts.scale * 2,
        ArbiterKind::HotnessWeighted,
        "heavy",
        &opts,
        3,
        None,
        false,
    );
    // `checked` arms the shadow-state sanitizer and the per-tenant
    // quota-partition census; any violation panics inside run_cell.
    let checked = run_cell(
        "MTM",
        &specs,
        opts.scale * 2,
        ArbiterKind::HotnessWeighted,
        "heavy",
        &opts,
        3,
        None,
        true,
    );
    assert_eq!(format!("{plain:?}"), format!("{checked:?}"), "the sanitizer is read-only");
}

#[test]
fn same_named_workloads_draw_distinct_streams() {
    // t00 and t06 both run GUPS (round-robin wraps after six); their
    // workload salts and fault-stream labels must still differ, so the
    // two runs must not mirror each other.
    let opts = tiny(3);
    let roster = tenant_specs(7);
    let specs = vec![roster[0].clone(), roster[6].clone()];
    assert_eq!(specs[0].workload, specs[1].workload);
    let reports = run_cell(
        "MTM",
        &specs,
        opts.scale * 2,
        ArbiterKind::StaticEqual,
        "heavy",
        &opts,
        11,
        None,
        false,
    );
    assert_eq!(reports[0].workload, reports[1].workload);
    assert_ne!(
        reports[0].telemetry.to_json(),
        reports[1].telemetry.to_json(),
        "two tenants with the same workload name replayed the same access/fault stream"
    );
}
