//! Concurrency and determinism tests for the parallel evaluation-matrix
//! runner: the single-flight run cache and the worker pool.
//!
//! `MTM_JOBS=4` is set (same value) by every test that needs the parallel
//! path, because the test host may expose a single core and the pool
//! would otherwise fall back to serial inline execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use mtm_harness::runpool::{self, Job};
use mtm_harness::runs::{cached_run_traced, prewarm, run_pair};
use mtm_harness::Opts;

fn force_parallel() {
    std::env::set_var("MTM_JOBS", "4");
}

/// Tiny but real run options with a distinctive key so these tests never
/// collide with cache entries made by other tests in this process.
fn tiny(intervals: u64) -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.threads = 2;
    o.intervals = intervals;
    o.interval_ns = 0.5e6 + intervals as f64; // distinctive key component
    o
}

#[test]
fn same_key_runs_exactly_once_across_threads() {
    force_parallel();
    let opts = tiny(2);
    let executed = Arc::new(AtomicUsize::new(0));
    let start = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let executed = executed.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait(); // maximize contention on the one key
                let (report, ran) = cached_run_traced("first-touch", "GUPS", &opts);
                if ran {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                report
            })
        })
        .collect();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    assert_eq!(executed.load(Ordering::Relaxed), 1, "single-flight: one underlying run");
    for r in &reports[1..] {
        assert!(Arc::ptr_eq(&reports[0], r), "every caller gets the same report instance");
    }
    assert!(reports[0].total_ns > 0.0);
}

#[test]
fn distinct_keys_execute_in_parallel_on_the_pool() {
    force_parallel();
    // Both tasks block until the other has started: this only terminates
    // if the pool really runs distinct tasks concurrently.
    let rendezvous = Barrier::new(2);
    let jobs: Vec<Job<'_, usize>> = (0..2usize)
        .map(|i| {
            let rendezvous = &rendezvous;
            Box::new(move || {
                rendezvous.wait();
                i
            }) as Job<'_, usize>
        })
        .collect();
    assert_eq!(runpool::run_all(jobs), vec![0, 1]);
}

#[test]
fn parallel_prewarm_is_bit_identical_to_serial_runs() {
    force_parallel();
    let opts = tiny(3);
    let pairs = [("first-touch", "GUPS"), ("MTM", "GUPS"), ("autonuma", "BFS"), ("hemem", "SSSP")];
    // Serial ground truth: direct runs, no cache involved.
    let serial: Vec<String> =
        pairs.iter().map(|&(m, w)| format!("{:?}", run_pair(m, w, &opts))).collect();
    // Parallel: prewarm the matrix on the pool, then read the cache.
    prewarm(&pairs, &opts);
    for (i, &(m, w)) in pairs.iter().enumerate() {
        let (report, ran) = cached_run_traced(m, w, &opts);
        assert!(!ran, "prewarm already executed {m}/{w}");
        assert_eq!(
            serial[i],
            format!("{:?}", *report),
            "{m}/{w}: parallel report differs from serial"
        );
    }
}

#[test]
fn telemetry_is_deterministic_and_identical_through_the_cache() {
    force_parallel();
    let opts = tiny(4);
    // Two independent executions of the same (manager, workload, opts)
    // serialize to byte-identical telemetry JSON.
    let a = run_pair("MTM", "GUPS", &opts).telemetry.to_json();
    let b = run_pair("MTM", "GUPS", &opts).telemetry.to_json();
    assert_eq!(a, b, "telemetry must be deterministic across runs");
    // The snapshot travels inside the cached report, so the pooled
    // prewarm path (any MTM_JOBS) serves the exact same bytes as the
    // serial direct runs above.
    prewarm(&[("MTM", "GUPS")], &opts);
    let (report, ran) = cached_run_traced("MTM", "GUPS", &opts);
    assert!(!ran, "prewarm already executed the run");
    assert_eq!(report.telemetry.to_json(), a, "cached telemetry differs from serial");
    // The JSON parses and carries the full schema.
    let json = obs::json::parse(&a).expect("telemetry JSON parses");
    for key in obs::snapshot::REQUIRED_KEYS {
        assert!(json.get(key).is_some(), "missing top-level key {key:?}");
    }
    // An instrumented MTM run on GUPS actually recorded decisions.
    assert!(
        json.get("events").and_then(|e| e.as_arr()).map(|a| a.len()).unwrap_or(0) > 0,
        "MTM/GUPS run recorded no decision events"
    );
}

#[test]
fn prewarm_tolerates_duplicates_and_repeats() {
    force_parallel();
    let opts = tiny(2);
    let pairs =
        [("first-touch", "SSSP"), ("first-touch", "SSSP"), ("first-touch", "SSSP")];
    prewarm(&pairs, &opts);
    prewarm(&pairs, &opts); // all hits, still fine
    let (_, ran) = cached_run_traced("first-touch", "SSSP", &opts);
    assert!(!ran);
}
