//! Golden-report regression test: renders a small fixed (manager,
//! workload) matrix in quick mode and compares it byte-for-byte against
//! the checked-in fixture at `tests/golden/report.txt`.
//!
//! When an intentional behavior change shifts the numbers, regenerate
//! the fixture with:
//!
//! ```text
//! MTM_BLESS=1 cargo test -p mtm-harness --test golden
//! ```

use std::fmt::Write as _;
use std::path::Path;

use mtm_harness::runs::{run_pair, run_pair_with_faults};
use mtm_harness::tablefmt::TextTable;
use mtm_harness::Opts;
use tiersim::sim::RunReport;

const PAIRS: [(&str, &str); 3] = [("first-touch", "GUPS"), ("hemem", "GUPS"), ("MTM", "GUPS")];

fn tiny() -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.threads = 2;
    o.intervals = 6;
    o
}

/// The report under test: throughput plus the decision telemetry that
/// rides along with each run, so a regression in either the simulation
/// or the instrumentation shifts a cell.
fn render() -> String {
    render_with(|m, w, o| run_pair(m, w, o))
}

fn render_with(run: impl Fn(&str, &str, &Opts) -> RunReport) -> String {
    let opts = tiny();
    let mut t = TextTable::new(&[
        "manager",
        "workload",
        "ops",
        "migrated bytes",
        "promotions",
        "demotions",
        "events",
    ]);
    for (m, w) in PAIRS {
        let r = run(m, w, &opts);
        let reg = &r.telemetry.registry;
        t.row(vec![
            m.to_string(),
            w.to_string(),
            r.ops_completed.to_string(),
            r.machine.bytes_migrated.to_string(),
            reg.counter(obs::names::PROMOTIONS).to_string(),
            reg.counter(obs::names::DEMOTIONS).to_string(),
            r.telemetry.events.len().to_string(),
        ]);
    }
    let mut out = String::new();
    writeln!(out, "Golden quick-matrix report (scale=2^13, 2 threads, 6 intervals)").unwrap();
    out.push_str(&t.render());
    out
}

#[test]
fn report_matches_golden_fixture() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.txt");
    let got = render();
    if std::env::var("MTM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed golden fixture {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nregenerate with MTM_BLESS=1 cargo test -p mtm-harness --test golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "report drifted from the golden fixture; if intended, regenerate with \
         MTM_BLESS=1 cargo test -p mtm-harness --test golden"
    );
}

/// Healthy-path guard for the fault subsystem: routing runs through the
/// fault-aware entry point with no plan installed must reproduce the
/// golden fixture byte for byte. A disabled fault plane that consumed
/// RNG draws, perturbed bandwidth, or shifted telemetry would show up
/// here as a fixture mismatch.
#[test]
fn disabled_fault_plane_reproduces_the_golden_fixture() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.txt");
    let Ok(want) = std::fs::read_to_string(&path) else {
        // `report_matches_golden_fixture` owns the missing-fixture error.
        return;
    };
    let got = render_with(|m, w, o| run_pair_with_faults(m, w, o, None));
    assert_eq!(got, want, "a disabled fault plane must not move a single byte of the report");
}

/// A faulty run is a pure function of (plan, seed): replaying the same
/// plan and seed yields identical throughput and identical fault/retry
/// telemetry, and the injections demonstrably fired.
#[test]
fn faulty_runs_replay_identically() {
    let opts = tiny();
    let spec = "busy=0.3,allocfail=0.2,droppebs=0.5,drophint=0.5";
    let run = || {
        let plan = faultsim::FaultPlan::parse(spec).unwrap();
        run_pair_with_faults("hemem", "GUPS", &opts, Some((plan, 0xfee1_dead)))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.ops_completed, b.ops_completed);
    let injected = |r: &RunReport| {
        let reg = &r.telemetry.registry;
        reg.counter(obs::names::FAULT_PAGE_BUSY)
            + reg.counter(obs::names::FAULT_ALLOC_FAIL)
            + reg.counter(obs::names::FAULT_PEBS_LOST)
            + reg.counter(obs::names::FAULT_HINTS_LOST)
    };
    assert_eq!(injected(&a), injected(&b), "identical injection schedule");
    assert_eq!(
        a.telemetry.registry.counter(obs::names::MIGRATION_RETRIES),
        b.telemetry.registry.counter(obs::names::MIGRATION_RETRIES),
        "identical retry behavior"
    );
    assert!(injected(&a) > 0, "the plan actually injected faults");
}
