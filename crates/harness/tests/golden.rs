//! Golden-report regression test: renders a small fixed (manager,
//! workload) matrix in quick mode and compares it byte-for-byte against
//! the checked-in fixture at `tests/golden/report.txt`.
//!
//! When an intentional behavior change shifts the numbers, regenerate
//! the fixture with:
//!
//! ```text
//! MTM_BLESS=1 cargo test -p mtm-harness --test golden
//! ```

use std::fmt::Write as _;
use std::path::Path;

use mtm_harness::runs::run_pair;
use mtm_harness::tablefmt::TextTable;
use mtm_harness::Opts;

const PAIRS: [(&str, &str); 3] = [("first-touch", "GUPS"), ("hemem", "GUPS"), ("MTM", "GUPS")];

fn tiny() -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.threads = 2;
    o.intervals = 6;
    o
}

/// The report under test: throughput plus the decision telemetry that
/// rides along with each run, so a regression in either the simulation
/// or the instrumentation shifts a cell.
fn render() -> String {
    let opts = tiny();
    let mut t = TextTable::new(&[
        "manager",
        "workload",
        "ops",
        "migrated bytes",
        "promotions",
        "demotions",
        "events",
    ]);
    for (m, w) in PAIRS {
        let r = run_pair(m, w, &opts);
        let reg = &r.telemetry.registry;
        t.row(vec![
            m.to_string(),
            w.to_string(),
            r.ops_completed.to_string(),
            r.machine.bytes_migrated.to_string(),
            reg.counter(obs::names::PROMOTIONS).to_string(),
            reg.counter(obs::names::DEMOTIONS).to_string(),
            r.telemetry.events.len().to_string(),
        ]);
    }
    let mut out = String::new();
    writeln!(out, "Golden quick-matrix report (scale=2^13, 2 threads, 6 intervals)").unwrap();
    out.push_str(&t.render());
    out
}

#[test]
fn report_matches_golden_fixture() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.txt");
    let got = render();
    if std::env::var("MTM_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed golden fixture {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nregenerate with MTM_BLESS=1 cargo test -p mtm-harness --test golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "report drifted from the golden fixture; if intended, regenerate with \
         MTM_BLESS=1 cargo test -p mtm-harness --test golden"
    );
}
