//! `MTM_CHECK` behavioural-identity and sweep tests: the sanitizer is
//! read-only, so a checked run must produce a report identical to an
//! unchecked one, and the full manager x workload matrix must pass a
//! checked run with zero invariant violations.

use mtm_harness::opts::Opts;
use mtm_harness::resilience::RESILIENCE_MANAGERS;
use mtm_harness::runs::{run_pair_checked, run_pair_with_faults, WORKLOADS};

/// Small-but-representative options for the checked sweep: large enough
/// that every manager actually migrates, small enough that 48 uncached
/// runs stay CI-sized.
fn sweep_opts() -> Opts {
    let mut o = Opts::quick();
    o.scale = 8192;
    o.threads = 2;
    o.intervals = 6;
    o.interval_ns = 5.0e5;
    o
}

#[test]
fn checked_run_is_behaviourally_identical() {
    let opts = Opts::quick();
    let checked = run_pair_checked("MTM", "GUPS", &opts, None);
    let unchecked = run_pair_with_faults("MTM", "GUPS", &opts, None);
    // The sanitizer only observes: same simulation, same report, down to
    // every counter and telemetry event.
    assert_eq!(
        format!("{checked:?}"),
        format!("{unchecked:?}"),
        "MTM_CHECK perturbed the simulation"
    );
}

#[test]
fn checked_matrix_passes_all_managers_and_workloads() {
    let opts = sweep_opts();
    std::thread::scope(|scope| {
        for manager in RESILIENCE_MANAGERS {
            scope.spawn(move || {
                for workload in WORKLOADS {
                    // Panics (with the structured MTM_CHECK message) on
                    // any invariant violation mid-run or at the end.
                    let report = run_pair_checked(manager, workload, &opts, None);
                    assert!(
                        report.ops_completed > 0,
                        "{manager} x {workload}: no work completed"
                    );
                }
            });
        }
    });
}
