//! Worker-count determinism for the intra-run packet engine.
//!
//! The interval loop fans its profiling scans and census sweeps out over
//! `MTM_RUN_WORKERS` packet workers with an ordered reduction, so a run
//! must produce bit-identical results for any worker count. These tests
//! pin the worker count programmatically through
//! [`tiersim::machine::Machine::set_run_workers`] instead of the
//! environment variable, so they cannot race with other tests in the
//! same process.

use mtm_harness::runs::{build_manager, machine_for};
use mtm_harness::Opts;
use tiersim::sim::{run_scenario, RunReport, Workload};
use tiersim::tier::optane_four_tier;

/// Tiny but real run options (same shape as the parallel-cache tests).
fn tiny(intervals: u64) -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.threads = 2;
    o.intervals = intervals;
    o
}

/// Runs one (manager, workload) pair with a pinned packet worker count,
/// bypassing the run cache (a cache hit would compare a report against
/// itself and prove nothing). `checked` additionally arms the
/// shadow-state sanitizer for the whole run.
fn run_with_workers(
    manager: &str,
    workload: &str,
    opts: &Opts,
    workers: usize,
    checked: bool,
) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut machine = machine_for(manager, opts, topo.clone());
    machine.set_run_workers(workers);
    machine.set_checking(checked);
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let report = run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals);
    if checked {
        machine.verify_consistency("end of run");
    }
    report
}

/// The full report — every f64 (printed round-trippably by `Debug`),
/// every trace, every counter — is identical for 1 and 4 packet workers.
#[test]
fn reports_are_bit_identical_for_one_and_four_workers() {
    let opts = tiny(3);
    for (manager, workload) in [("MTM", "GUPS"), ("hemem", "BFS"), ("autonuma", "SSSP")] {
        let serial = run_with_workers(manager, workload, &opts, 1, false);
        let packet = run_with_workers(manager, workload, &opts, 4, false);
        assert_eq!(
            format!("{serial:?}"),
            format!("{packet:?}"),
            "{manager}/{workload}: 4-worker report differs from serial"
        );
        assert_eq!(
            serial.total_ns.to_bits(),
            packet.total_ns.to_bits(),
            "{manager}/{workload}: total_ns not bit-identical"
        );
    }
}

/// Worker counts that do not divide the packet count evenly (3) and
/// oversubscribed counts (16) still reduce to the same bytes.
#[test]
fn uneven_and_oversubscribed_worker_counts_agree() {
    let opts = tiny(2);
    let baseline = run_with_workers("MTM", "VoltDB", &opts, 1, false);
    for workers in [3usize, 16] {
        let other = run_with_workers("MTM", "VoltDB", &opts, workers, false);
        assert_eq!(
            format!("{baseline:?}"),
            format!("{other:?}"),
            "MTM/VoltDB: {workers}-worker report differs from serial"
        );
    }
}

/// The shadow-state sanitizer (which cross-checks the packed side
/// metadata against the PTE bits after every interval) passes under the
/// parallel scan path, and checking stays read-only: a checked 4-worker
/// run reports the same bytes as a checked serial run.
#[test]
fn sanitizer_passes_and_stays_readonly_under_parallel_scans() {
    let opts = tiny(2);
    let serial = run_with_workers("MTM", "GUPS", &opts, 1, true);
    let packet = run_with_workers("MTM", "GUPS", &opts, 4, true);
    assert_eq!(
        format!("{serial:?}"),
        format!("{packet:?}"),
        "MTM/GUPS: checked 4-worker report differs from checked serial"
    );
}
