//! Experiment options: simulation scale and run length.
//!
//! The defaults reproduce the paper's setup scaled down by `scale` (see
//! `DESIGN.md` for the mapping). Environment variables override them:
//! `MTM_QUICK=1` (small, fast runs), `MTM_SCALE`, `MTM_THREADS`,
//! `MTM_INTERVALS`, `MTM_INTERVAL_NS`.

/// Options shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Opts {
    /// Capacity/footprint divisor relative to the paper's hardware.
    pub scale: u64,
    /// Application threads (paper default: 8).
    pub threads: usize,
    /// Profiling intervals per run.
    pub intervals: u64,
    /// Virtual length of one profiling interval in nanoseconds
    /// (simulation-time equivalent of the paper's 10 s interval).
    pub interval_ns: f64,
    /// Quick mode (CI-sized runs).
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts { scale: 256, threads: 8, intervals: 120, interval_ns: 2.0e6, quick: false }
    }
}

impl Opts {
    /// Quick-mode options for CI and tests.
    pub fn quick() -> Opts {
        Opts { scale: 4096, threads: 4, intervals: 12, interval_ns: 1.0e6, quick: true }
    }

    /// Reads options from the environment.
    pub fn from_env() -> Opts {
        let mut o = if std::env::var("MTM_QUICK").map(|v| v == "1").unwrap_or(false) {
            Opts::quick()
        } else {
            Opts::default()
        };
        if let Ok(v) = std::env::var("MTM_SCALE") {
            if let Ok(v) = v.parse() {
                o.scale = v;
            }
        }
        if let Ok(v) = std::env::var("MTM_THREADS") {
            if let Ok(v) = v.parse() {
                o.threads = v;
            }
        }
        if let Ok(v) = std::env::var("MTM_INTERVALS") {
            if let Ok(v) = v.parse() {
                o.intervals = v;
            }
        }
        if let Ok(v) = std::env::var("MTM_INTERVAL_NS") {
            if let Ok(v) = v.parse() {
                o.interval_ns = v;
            }
        }
        o
    }

    /// The per-interval migration budget every system shares (the paper's
    /// 200 MB per interval, scaled; see `MtmConfig::with_paper_promote_budget`).
    pub fn promote_budget(&self) -> u64 {
        ((200u64 << 20) * 16 / self.scale).max(4 << 21)
    }

    /// A hashable cache key.
    pub fn key(&self) -> (u64, usize, u64, u64) {
        (self.scale, self.threads, self.intervals, self.interval_ns.to_bits())
    }

    /// Formats a simulated byte count at paper scale (multiplying back).
    pub fn paper_bytes(&self, sim_bytes: u64) -> String {
        tiersim::addr::fmt_bytes(sim_bytes.saturating_mul(self.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_quick_differ() {
        let d = Opts::default();
        let q = Opts::quick();
        assert!(q.scale > d.scale);
        assert!(q.intervals < d.intervals);
        assert_ne!(d.key(), q.key());
    }

    #[test]
    fn promote_budget_has_floor() {
        let mut o = Opts::default();
        o.scale = 1 << 40;
        assert_eq!(o.promote_budget(), 4 << 21);
        o.scale = 8;
        assert_eq!(o.promote_budget(), 400 << 20);
    }
}
