//! Experiment options: simulation scale and run length.
//!
//! The defaults reproduce the paper's setup scaled down by `scale` (see
//! `DESIGN.md` for the mapping). Environment variables override them:
//! `MTM_QUICK=1` (small, fast runs), `MTM_SCALE`, `MTM_THREADS`,
//! `MTM_INTERVALS`, `MTM_INTERVAL_NS`.

/// Applies one `NAME=value` override to `dst`; on a parse failure leaves
/// `dst` untouched and returns the warning line to print.
fn apply_override<T: std::str::FromStr>(
    name: &str,
    raw: Option<String>,
    dst: &mut T,
) -> Option<String> {
    let raw = raw?;
    match raw.parse() {
        Ok(v) => {
            *dst = v;
            None
        }
        Err(_) => Some(format!(
            "warning: ignoring {name}={raw:?} (not a valid {})",
            std::any::type_name::<T>()
        )),
    }
}

/// Options shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Opts {
    /// Capacity/footprint divisor relative to the paper's hardware.
    pub scale: u64,
    /// Application threads (paper default: 8).
    pub threads: usize,
    /// Profiling intervals per run.
    pub intervals: u64,
    /// Virtual length of one profiling interval in nanoseconds
    /// (simulation-time equivalent of the paper's 10 s interval).
    pub interval_ns: f64,
    /// Quick mode (CI-sized runs).
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts { scale: 256, threads: 8, intervals: 120, interval_ns: 2.0e6, quick: false }
    }
}

impl Opts {
    /// Quick-mode options for CI and tests.
    pub fn quick() -> Opts {
        Opts { scale: 4096, threads: 4, intervals: 12, interval_ns: 1.0e6, quick: true }
    }

    /// Reads options from the environment. Unparsable overrides are
    /// **not** silently ignored: each one prints a `warning:` line on
    /// stderr (and `scripts/verify.sh` fails the smoke run on any such
    /// line), so a typo'd `MTM_SCALE` can't quietly run the wrong
    /// experiment.
    pub fn from_env() -> Opts {
        let mut o = match std::env::var("MTM_QUICK").ok().as_deref() {
            Some("1") => Opts::quick(),
            Some("0") | Some("") | None => Opts::default(),
            Some(other) => {
                eprintln!("warning: ignoring MTM_QUICK={other:?} (expected 0 or 1)");
                Opts::default()
            }
        };
        for w in [
            apply_override("MTM_SCALE", std::env::var("MTM_SCALE").ok(), &mut o.scale),
            apply_override("MTM_THREADS", std::env::var("MTM_THREADS").ok(), &mut o.threads),
            apply_override("MTM_INTERVALS", std::env::var("MTM_INTERVALS").ok(), &mut o.intervals),
            apply_override("MTM_INTERVAL_NS", std::env::var("MTM_INTERVAL_NS").ok(), &mut o.interval_ns),
        ]
        .into_iter()
        .flatten()
        {
            eprintln!("{w}");
        }
        o
    }

    /// The per-interval migration budget every system shares (the paper's
    /// 200 MB per interval, scaled; see `MtmConfig::with_paper_promote_budget`).
    pub fn promote_budget(&self) -> u64 {
        ((200u64 << 20) * 16 / self.scale).max(4 << 21)
    }

    /// A hashable cache key.
    pub fn key(&self) -> (u64, usize, u64, u64) {
        (self.scale, self.threads, self.intervals, self.interval_ns.to_bits())
    }

    /// Formats a simulated byte count at paper scale (multiplying back).
    pub fn paper_bytes(&self, sim_bytes: u64) -> String {
        tiersim::addr::fmt_bytes(sim_bytes.saturating_mul(self.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_quick_differ() {
        let d = Opts::default();
        let q = Opts::quick();
        assert!(q.scale > d.scale);
        assert!(q.intervals < d.intervals);
        assert_ne!(d.key(), q.key());
    }

    #[test]
    fn override_parses_or_warns() {
        let mut scale = 256u64;
        // Unset: untouched, no warning.
        assert_eq!(apply_override("MTM_SCALE", None, &mut scale), None);
        assert_eq!(scale, 256);
        // Valid: applied, no warning.
        assert_eq!(apply_override("MTM_SCALE", Some("64".into()), &mut scale), None);
        assert_eq!(scale, 64);
        // Typo: untouched, loud.
        let w = apply_override("MTM_SCALE", Some("6 4".into()), &mut scale)
            .expect("unparsable override warns");
        assert!(w.starts_with("warning: ignoring MTM_SCALE=\"6 4\""), "{w}");
        assert_eq!(scale, 64);
        // Same machinery for floats.
        let mut ns = 2.0e6f64;
        assert_eq!(apply_override("MTM_INTERVAL_NS", Some("1e6".into()), &mut ns), None);
        assert_eq!(ns, 1.0e6);
        assert!(apply_override("MTM_INTERVAL_NS", Some("fast".into()), &mut ns).is_some());
        assert_eq!(ns, 1.0e6);
    }

    #[test]
    fn promote_budget_has_floor() {
        let mut o = Opts::default();
        o.scale = 1 << 40;
        assert_eq!(o.promote_budget(), 4 << 21);
        o.scale = 8;
        assert_eq!(o.promote_budget(), 400 << 20);
    }
}
