//! Fig. 6: heatmap of memory accesses in GUPS and which hot objects
//! (A: indexes, B: hot-set info, C: the hot set) each profiler detects,
//! DAMON vs MTM, under the same profiling overhead.

use mtm::{MtmConfig, MtmManager};
use mtm_baselines::{Damon, DamonConfig};
use mtm_workloads::{Gups, GupsConfig};
use tiersim::addr::VaRange;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{drive_interval, MemoryManager, SimEnv};
use tiersim::tier::optane_four_tier;

use crate::metrics::intersection_bytes;
use crate::opts::Opts;
use crate::tablefmt::TextTable;

struct Detection {
    detected: Vec<VaRange>,
    heat: Vec<(tiersim::VirtAddr, u64)>,
}

fn run_profiler<M: MemoryManager>(
    opts: &Opts,
    mut mgr: M,
    probe: impl Fn(&M) -> Vec<VaRange>,
) -> (Detection, Gups) {
    let mut cfg = MachineConfig::new(optane_four_tier(opts.scale), opts.threads);
    cfg.interval_ns = opts.interval_ns;
    cfg.track_heat = true;
    let mut m = Machine::new(cfg);
    let mut gcfg = GupsConfig::paper(opts.scale, opts.threads);
    gcfg.rotate_every = None; // Fig. 6 studies a stable hot set.
    let mut wl = Gups::new(gcfg);
    {
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        tiersim::sim::Workload::setup(&mut wl, &mut env);
    }
    mgr.init(&mut m);
    m.reset_measurement();
    for ivl in 0..opts.intervals {
        drive_interval(&mut m, &mut mgr, &mut wl, ivl);
        mgr.on_interval(&mut m, ivl);
    }
    (Detection { detected: probe(&mgr), heat: m.heat_snapshot() }, wl)
}

fn coverage(detected: &[VaRange], object: VaRange) -> f64 {
    if object.is_empty() {
        return 0.0;
    }
    intersection_bytes(detected, &[object]) as f64 / object.len() as f64
}

/// ASCII heat strip over the GUPS table (for a visual cross-check).
fn heat_strip(heat: &[(tiersim::VirtAddr, u64)], table: VaRange, buckets: usize) -> String {
    let mut acc = vec![0u64; buckets];
    for &(va, n) in heat {
        if table.contains(va) {
            let b = ((va - table.start) as u128 * buckets as u128 / table.len() as u128) as usize;
            acc[b.min(buckets - 1)] += n;
        }
    }
    let max = acc.iter().copied().max().unwrap_or(1).max(1);
    const SHADES: [char; 5] = [' ', '.', ':', 'o', '#'];
    acc.iter()
        .map(|&v| SHADES[((v as u128 * (SHADES.len() - 1) as u128) / max as u128) as usize])
        .collect()
}

/// Renders Fig. 6.
pub fn run(opts: &Opts) -> String {
    // The two profiler runs are independent simulations; run them on the
    // worker pool.
    use crate::runpool::{run_all, Job};
    let jobs: Vec<Job<'_, (Detection, Gups)>> = vec![
        Box::new(move || {
            let mut cfg = MtmConfig::default();
            cfg.promote_bytes = 0;
            let scans = cfg.num_scans as f64;
            run_profiler(opts, MtmManager::new(cfg, 2), move |m| {
                m.profiler().hot_ranges_above(scans * 0.5)
            })
        }),
        Box::new(move || {
            let dcfg = DamonConfig::default();
            let thr = ((dcfg.checks_per_interval as f64) * 0.3) as u32;
            run_profiler(opts, Damon::new(dcfg), move |d| d.hot_ranges_above(thr.max(1)))
        }),
    ];
    let mut out = run_all(jobs).into_iter();
    let (mtm, wl) = out.next().expect("MTM run");
    let (damon, _) = out.next().expect("DAMON run");

    let objects =
        [("A (indexes)", wl.index_range()), ("B (hot-set info)", wl.hotinfo_range()), ("C (hot set)", wl.hot_band())];
    let mut table = TextTable::new(&["object", "size", "DAMON coverage", "MTM coverage"]);
    for (name, range) in objects {
        table.row(vec![
            name.to_string(),
            tiersim::addr::fmt_bytes(range.len()),
            format!("{:.0}%", 100.0 * coverage(&damon.detected, range)),
            format!("{:.0}%", 100.0 * coverage(&mtm.detected, range)),
        ]);
    }
    let strip = heat_strip(&mtm.heat, wl.table_range(), 64);
    format!(
        "Fig. 6 — GUPS hot-object detection, DAMON vs MTM (same 5% overhead)\n\n{}\nAccess heat over the GUPS table (64 buckets):\n[{}]\n(paper: MTM finds A, B and C; DAMON finds only A and misses B and C)\n",
        table.render(),
        strip
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtm_covers_hot_band_better_than_damon() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 10;
        o.threads = 2;
        let s = run(&o);
        assert!(s.contains("C (hot set)"));
        assert!(s.contains("Access heat"));
    }
}
