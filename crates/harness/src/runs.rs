//! Scenario construction and cached execution of the evaluation matrix.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mtm::{MtmConfig, MtmManager};
use mtm_baselines::{build_baseline, hemem_pebs_config};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, MemoryManager, RunReport, Workload};
use tiersim::tier::{optane_four_tier, Topology};

use crate::opts::Opts;

/// Managers of the overall evaluation (Fig. 4 plus HeMem from the text).
pub const OVERALL_MANAGERS: [&str; 7] =
    ["first-touch", "hmc", "vanilla-autonuma", "autonuma", "autotiering", "hemem", "MTM"];

/// The six workloads of Table 2.
pub const WORKLOADS: [&str; 6] = ["GUPS", "VoltDB", "Cassandra", "BFS", "SSSP", "Spark"];

/// Builds an MTM configuration matching the options.
pub fn mtm_config(opts: &Opts) -> MtmConfig {
    let mut cfg = MtmConfig::default();
    cfg.promote_bytes = opts.promote_budget();
    cfg
}

/// Builds a manager by name, or `None` for an unknown name; `MTM` and
/// `MTM:<ablation>` build the core system, everything else resolves
/// through the baseline factory.
pub fn try_build_manager(name: &str, opts: &Opts, topo: &Topology) -> Option<Box<dyn MemoryManager>> {
    if let Some(rest) = name.strip_prefix("MTM") {
        let mut cfg = mtm_config(opts);
        match rest {
            "" => {}
            ":w/o-AMR" => cfg.adaptive_regions = false,
            ":w/o-APS" => cfg.adaptive_sampling = false,
            ":w/o-OC" => {
                cfg.overhead_control = false;
                cfg.adaptive_regions = false;
            }
            ":w/o-PEBS" => cfg.pebs_assist = false,
            ":w/o-async" => cfg.async_migration = false,
            ":fast-first" => cfg.initial_placement = mtm::InitialPlacement::FastLocalFirst,
            _ => return None,
        }
        return Some(Box::new(MtmManager::new(cfg, topo.nodes as usize)));
    }
    build_baseline(name, opts.promote_budget())
}

/// Builds a manager by name; panics on an unknown name (use
/// [`try_build_manager`] to handle that case).
pub fn build_manager(name: &str, opts: &Opts, topo: &Topology) -> Box<dyn MemoryManager> {
    try_build_manager(name, opts, topo).unwrap_or_else(|| panic!("unknown manager {name:?}"))
}

/// Builds the machine a manager runs on: the four-tier Optane topology by
/// default, Memory Mode caches for `hmc`, and all-component PEBS for
/// `hemem`.
pub fn machine_for(manager: &str, opts: &Opts, topo: Topology) -> Machine {
    let mut cfg = MachineConfig::new(topo.clone(), opts.threads);
    cfg.interval_ns = opts.interval_ns;
    if manager == "hmc" {
        cfg.hmc_mode = true;
    }
    if manager == "hemem" {
        cfg.pebs = hemem_pebs_config(&topo);
    }
    Machine::new(cfg)
}

/// Runs one (manager, workload) pair on the four-tier machine.
pub fn run_pair(manager: &str, workload: &str, opts: &Opts) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    run_pair_on(manager, workload, opts, topo)
}

/// Runs one (manager, workload) pair on a given topology.
pub fn run_pair_on(manager: &str, workload: &str, opts: &Opts, topo: Topology) -> RunReport {
    let mut machine = machine_for(manager, opts, topo.clone());
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals)
}

type Cache = Mutex<HashMap<((u64, usize, u64, u64), String, String), Arc<RunReport>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs (or returns the cached result of) one pair on the default
/// topology. Several experiments share the same underlying runs; the
/// cache keeps `all` from re-running them.
pub fn cached_run(manager: &str, workload: &str, opts: &Opts) -> Arc<RunReport> {
    let key = (opts.key(), manager.to_string(), workload.to_string());
    if let Some(hit) = cache().lock().expect("run cache poisoned").get(&key) {
        return hit.clone();
    }
    let report = Arc::new(run_pair(manager, workload, opts));
    cache().lock().expect("run cache poisoned").insert(key, report.clone());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_overall_managers() {
        let opts = Opts::quick();
        let topo = optane_four_tier(opts.scale);
        for name in OVERALL_MANAGERS {
            let m = build_manager(name, &opts, &topo);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn mtm_variants_resolve() {
        let opts = Opts::quick();
        let topo = optane_four_tier(opts.scale);
        for v in ["MTM", "MTM:w/o-AMR", "MTM:w/o-APS", "MTM:w/o-OC", "MTM:w/o-PEBS", "MTM:w/o-async", "MTM:fast-first"]
        {
            let _ = build_manager(v, &opts, &topo);
        }
    }

    #[test]
    fn cached_run_returns_same_instance() {
        let mut opts = Opts::quick();
        opts.intervals = 2;
        opts.scale = 1 << 14;
        let a = cached_run("first-touch", "GUPS", &opts);
        let b = cached_run("first-touch", "GUPS", &opts);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.total_ns > 0.0);
    }
}
