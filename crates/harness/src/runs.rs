//! Scenario construction and cached execution of the evaluation matrix.
//!
//! Runs are memoized in a process-wide **single-flight** cache: the first
//! caller of a `(manager, workload, opts)` key executes the run while any
//! concurrent caller of the same key blocks on a `Condvar` until that one
//! execution publishes its report. Distinct keys execute fully in
//! parallel. [`prewarm`] schedules a whole matrix of keys onto the
//! [`crate::runpool`] worker pool up front, so experiments that later read
//! the same runs (Fig. 4/5, Tables 3/5/7, Fig. 7, ...) render from warm
//! cache hits.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use mtm::{MtmConfig, MtmManager};
use mtm_baselines::{build_baseline, hemem_pebs_config};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, MemoryManager, RunReport, Workload};
use tiersim::tier::{optane_four_tier, Topology};

use crate::opts::Opts;

/// Managers of the overall evaluation (Fig. 4 plus HeMem from the text).
pub const OVERALL_MANAGERS: [&str; 7] =
    ["first-touch", "hmc", "vanilla-autonuma", "autonuma", "autotiering", "hemem", "MTM"];

/// The six workloads of Table 2.
pub const WORKLOADS: [&str; 6] = ["GUPS", "VoltDB", "Cassandra", "BFS", "SSSP", "Spark"];

/// Builds an MTM configuration matching the options, including the
/// `MTM_ADMIT` / `MTM_SHADOW` environment plumbing. With both unset the
/// configuration — and every result derived from it — is identical to a
/// build without the admission plane.
pub fn mtm_config(opts: &Opts) -> MtmConfig {
    let mut cfg = MtmConfig::default();
    cfg.promote_bytes = opts.promote_budget();
    let (admission, shadow) = env_admission_setup();
    cfg.admission = admission;
    cfg.shadow = shadow;
    cfg
}

/// The admission policy and shadow mode configured through `MTM_ADMIT` /
/// `MTM_SHADOW`, read once per process. Unknown values print a
/// `warning:` line — once — and fall back to the legacy defaults
/// (`always`, shadow off) instead of silently selecting something the
/// user did not ask for.
fn env_admission_setup() -> (mtm::AdmissionKind, bool) {
    static SETUP: OnceLock<(mtm::AdmissionKind, bool)> = OnceLock::new();
    *SETUP.get_or_init(|| {
        let kind = match std::env::var("MTM_ADMIT") {
            Ok(s) if !s.is_empty() => mtm::AdmissionKind::parse(&s).unwrap_or_else(|| {
                eprintln!(
                    "warning: MTM_ADMIT={s:?} is not a policy \
                     (always|pingpong|ratelimit|hotness-delta); using always"
                );
                mtm::AdmissionKind::Always
            }),
            _ => mtm::AdmissionKind::Always,
        };
        let shadow = match std::env::var("MTM_SHADOW").as_deref() {
            Ok("1") => true,
            Ok("") | Ok("0") | Err(_) => false,
            Ok(s) => {
                eprintln!("warning: MTM_SHADOW={s:?} is not 0 or 1; shadow mode stays off");
                false
            }
        };
        (kind, shadow)
    })
}

/// Builds a manager by name, or `None` for an unknown name; `MTM` and
/// `MTM:<ablation>` build the core system, everything else resolves
/// through the baseline factory.
pub fn try_build_manager(name: &str, opts: &Opts, topo: &Topology) -> Option<Box<dyn MemoryManager>> {
    if let Some(rest) = name.strip_prefix("MTM") {
        let mut cfg = mtm_config(opts);
        match rest {
            "" => {}
            ":w/o-AMR" => cfg.adaptive_regions = false,
            ":w/o-APS" => cfg.adaptive_sampling = false,
            ":w/o-OC" => {
                cfg.overhead_control = false;
                cfg.adaptive_regions = false;
            }
            ":w/o-PEBS" => cfg.pebs_assist = false,
            ":w/o-async" => cfg.async_migration = false,
            ":fast-first" => cfg.initial_placement = mtm::InitialPlacement::FastLocalFirst,
            _ => return None,
        }
        return Some(Box::new(MtmManager::new(cfg, topo.nodes as usize)));
    }
    build_baseline(name, opts.promote_budget())
}

/// Builds a manager by name; panics on an unknown name (use
/// [`try_build_manager`] to handle that case).
pub fn build_manager(name: &str, opts: &Opts, topo: &Topology) -> Box<dyn MemoryManager> {
    try_build_manager(name, opts, topo).unwrap_or_else(|| panic!("unknown manager {name:?}"))
}

/// Builds the machine a manager runs on, before fault installation: the
/// four-tier Optane topology by default, Memory Mode caches for `hmc`,
/// and all-component PEBS for `hemem`.
pub fn healthy_machine_for(manager: &str, opts: &Opts, topo: Topology) -> Machine {
    let mut cfg = MachineConfig::new(topo.clone(), opts.threads);
    cfg.interval_ns = opts.interval_ns;
    if manager == "hmc" {
        cfg.hmc_mode = true;
    }
    if manager == "hemem" {
        cfg.pebs = hemem_pebs_config(&topo);
    }
    Machine::new(cfg)
}

/// The fault plan + base seed configured through `MTM_FAULTS` /
/// `MTM_FAULT_SEED`, read once per process. `None` when unset, empty, or
/// malformed (malformed specs print a `warning:` line — once — instead of
/// silently injecting nothing the user asked for).
fn env_fault_setup() -> Option<(faultsim::FaultPlan, u64)> {
    static SETUP: OnceLock<Option<(faultsim::FaultPlan, u64)>> = OnceLock::new();
    SETUP
        .get_or_init(|| {
            let plan = match faultsim::FaultPlan::from_env() {
                Ok(p) => p?,
                Err(e) => {
                    eprintln!("warning: {e}");
                    return None;
                }
            };
            let (seed, warn) = faultsim::plan::seed_from_env();
            if let Some(w) = warn {
                eprintln!("warning: {w}");
            }
            Some((plan, seed))
        })
        .clone()
}

/// Builds the machine a manager runs on (see [`healthy_machine_for`]),
/// installing the environment-configured fault plan if one is set. Each
/// manager draws from its own label-derived stream, so the schedule a
/// given run sees never depends on what else ran, or in which order.
pub fn machine_for(manager: &str, opts: &Opts, topo: Topology) -> Machine {
    let mut machine = healthy_machine_for(manager, opts, topo);
    if let Some((plan, seed)) = env_fault_setup() {
        machine.install_faults(plan, faultsim::derive_seed(seed, manager));
    }
    machine
}

/// Runs one (manager, workload) pair on the four-tier machine.
pub fn run_pair(manager: &str, workload: &str, opts: &Opts) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    run_pair_on(manager, workload, opts, topo)
}

/// Runs one (manager, workload) pair on a given topology.
pub fn run_pair_on(manager: &str, workload: &str, opts: &Opts, topo: Topology) -> RunReport {
    let mut machine = machine_for(manager, opts, topo.clone());
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals)
}

/// Runs one (manager, workload) pair with an explicit fault plan (or an
/// explicitly healthy machine when `faults` is `None`), bypassing both
/// the environment configuration and the run cache. This is the entry
/// point for the resilience sweep and for tests that must not race on
/// process-global environment variables.
pub fn run_pair_with_faults(
    manager: &str,
    workload: &str,
    opts: &Opts,
    faults: Option<(faultsim::FaultPlan, u64)>,
) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut machine = healthy_machine_for(manager, opts, topo.clone());
    if let Some((plan, seed)) = faults {
        machine.install_faults(plan, seed);
    }
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals)
}

/// Like [`run_pair_with_faults`], but with the shadow-state sanitizer
/// armed for the whole run regardless of `MTM_CHECK`, and a final
/// consistency sweep after the last interval. Panics on any invariant
/// violation; otherwise returns the same report an unchecked run
/// produces (the sanitizer is read-only).
pub fn run_pair_checked(
    manager: &str,
    workload: &str,
    opts: &Opts,
    faults: Option<(faultsim::FaultPlan, u64)>,
) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut machine = healthy_machine_for(manager, opts, topo.clone());
    if let Some((plan, seed)) = faults {
        machine.install_faults(plan, seed);
    }
    machine.set_checking(true);
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let report = run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals);
    machine.verify_consistency("end of run");
    report
}

type Key = ((u64, usize, u64, u64), String, String);

/// One cache entry. `Pending` while the owning caller executes the run,
/// `Ready` once the report is published, `Abandoned` if the owner
/// panicked (waiters then retry and one of them becomes the new owner).
enum SlotState {
    Pending,
    Ready(Arc<RunReport>),
    Abandoned,
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot { state: Mutex::new(SlotState::Pending), cv: Condvar::new() }
    }
}

type Cache = Mutex<BTreeMap<Key, Arc<Slot>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Cache-effectiveness counters for the single-flight run cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Runs actually executed (cache misses).
    pub misses: u64,
    /// Calls answered from a completed run.
    pub hits: u64,
    /// Calls that blocked on a run another caller was already executing
    /// (the work the single-flight design deduplicates).
    pub coalesced: u64,
}

/// A snapshot of the process-wide run-cache counters (kept in the shared
/// observability registry, [`obs::shared`]).
pub fn run_cache_stats() -> RunCacheStats {
    let shared = obs::shared();
    RunCacheStats {
        misses: shared.get(obs::names::RUN_CACHE_MISSES),
        hits: shared.get(obs::names::RUN_CACHE_HITS),
        coalesced: shared.get(obs::names::RUN_CACHE_COALESCED),
    }
}

/// Marks the slot abandoned (and evicts it) if the owner unwinds before
/// publishing a report, so waiters wake up and retry instead of hanging.
struct OwnerGuard<'a> {
    key: &'a Key,
    slot: &'a Arc<Slot>,
    published: bool,
}

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        cache().lock().expect("run cache poisoned").remove(self.key);
        *self.slot.state.lock().expect("run slot poisoned") = SlotState::Abandoned;
        self.slot.cv.notify_all();
    }
}

/// Runs (or returns the cached result of) one pair on the default
/// topology. Several experiments share the same underlying runs; the
/// cache keeps `all` from re-running them.
///
/// The cache is single-flight: concurrent callers of the same key block
/// until the one execution finishes, so a key is never run twice no
/// matter how many threads ask for it.
pub fn cached_run(manager: &str, workload: &str, opts: &Opts) -> Arc<RunReport> {
    cached_run_traced(manager, workload, opts).0
}

/// Like [`cached_run`], but also reports whether *this* call executed the
/// underlying run (`true` exactly once per key).
pub fn cached_run_traced(manager: &str, workload: &str, opts: &Opts) -> (Arc<RunReport>, bool) {
    let key: Key = (opts.key(), manager.to_string(), workload.to_string());
    loop {
        let (slot, owner) = {
            let mut map = cache().lock().expect("run cache poisoned");
            match map.entry(key.clone()) {
                Entry::Occupied(e) => (e.get().clone(), false),
                Entry::Vacant(v) => {
                    let slot = Arc::new(Slot::new());
                    v.insert(slot.clone());
                    (slot, true)
                }
            }
        };
        if owner {
            obs::shared().add(obs::names::RUN_CACHE_MISSES, 1);
            eprintln!("[run] {manager}/{workload}: started");
            // lint:allow(wall-clock): stderr progress timing only; never reaches reports
            let t0 = Instant::now();
            let mut guard = OwnerGuard { key: &key, slot: &slot, published: false };
            let report = Arc::new(run_pair(manager, workload, opts));
            // Export telemetry before publishing: the snapshot travels
            // inside the Arc'd report, so coalesced waiters and later
            // cache hits observe the identical telemetry; only the owner
            // writes the file, once per key.
            if crate::metrics::telemetry_enabled() {
                if let Err(e) = crate::metrics::emit_telemetry(&report.telemetry) {
                    eprintln!("warning: could not write telemetry for {manager}/{workload}: {e}");
                }
            }
            *slot.state.lock().expect("run slot poisoned") = SlotState::Ready(report.clone());
            guard.published = true;
            slot.cv.notify_all();
            eprintln!(
                "[run] {manager}/{workload}: finished in {:.2}s",
                t0.elapsed().as_secs_f64()
            );
            return (report, true);
        }
        let mut state = slot.state.lock().expect("run slot poisoned");
        if let SlotState::Ready(r) = &*state {
            obs::shared().add(obs::names::RUN_CACHE_HITS, 1);
            return (r.clone(), false);
        }
        if matches!(*state, SlotState::Pending) {
            obs::shared().add(obs::names::RUN_CACHE_COALESCED, 1);
        }
        loop {
            match &*state {
                SlotState::Ready(r) => return (r.clone(), false),
                SlotState::Abandoned => break, // owner panicked; retry from the top
                SlotState::Pending => {
                    state = slot.cv.wait(state).expect("run slot poisoned");
                }
            }
        }
    }
}

/// Schedules every `(manager, workload)` pair onto the worker pool and
/// blocks until all of them are in the cache. Duplicate pairs (and pairs
/// racing with other threads) are deduplicated by the single-flight
/// cache, so prewarming is always safe to call, from anywhere, with an
/// overlapping matrix.
pub fn prewarm(pairs: &[(&str, &str)], opts: &Opts) {
    let mut todo: Vec<(String, String)> = Vec::new();
    for &(m, w) in pairs {
        let pair = (m.to_string(), w.to_string());
        if !todo.contains(&pair) {
            todo.push(pair);
        }
    }
    if todo.is_empty() {
        return;
    }
    // lint:allow(wall-clock): stderr progress timing only; never reaches reports
    let t0 = Instant::now();
    let n = todo.len();
    let workers = crate::runpool::jobs().min(n);
    crate::runpool::map_parallel(todo, |(m, w)| {
        cached_run(&m, &w, opts);
    });
    eprintln!(
        "[prewarm] {n} pair(s) ready in {:.2}s on {workers} worker(s)",
        t0.elapsed().as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_overall_managers() {
        let opts = Opts::quick();
        let topo = optane_four_tier(opts.scale);
        for name in OVERALL_MANAGERS {
            let m = build_manager(name, &opts, &topo);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn mtm_variants_resolve() {
        let opts = Opts::quick();
        let topo = optane_four_tier(opts.scale);
        for v in ["MTM", "MTM:w/o-AMR", "MTM:w/o-APS", "MTM:w/o-OC", "MTM:w/o-PEBS", "MTM:w/o-async", "MTM:fast-first"]
        {
            let _ = build_manager(v, &opts, &topo);
        }
    }

    #[test]
    fn cached_run_returns_same_instance() {
        let mut opts = Opts::quick();
        opts.intervals = 2;
        opts.scale = 1 << 14;
        let a = cached_run("first-touch", "GUPS", &opts);
        let b = cached_run("first-touch", "GUPS", &opts);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.total_ns > 0.0);
    }
}
