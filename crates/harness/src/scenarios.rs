//! Scenario sweep: serving-style traffic generators and tenant churn.
//!
//! Batch workloads (Table 2) exercise steady-state placement; this sweep
//! exercises *phase transitions*. Three synthetic serving generators
//! (`mtm_scenario::Serving`) — a drifting zipfian KV store, a diurnal
//! load curve and a flash crowd — run under each manager, and the table
//! reports how fast placement restabilizes after each traffic shift:
//! intervals until migration traffic settles, migration bytes per phase,
//! and the p99 latency inflation inside the transient windows.
//!
//! A second cell drives the multi-tenant machinery through a
//! [`ChurnSchedule`]: tenants arrive mid-run, are resized, and depart,
//! with the global arbiter re-splitting capacity at every boundary. The
//! driver mirrors `multitenant::run_cell` (lock-step serial stepping,
//! arbitration between intervals), so the table is byte-identical for
//! any `MTM_JOBS` / `MTM_RUN_WORKERS` / `MTM_CHECK` setting. Scenario
//! machines are always healthy — phase transitions, not faults, are the
//! subject — so the table is also independent of `MTM_FAULTS`.
//!
//! The sweep ends with an always-on checkpoint differential: the
//! MTM/KVDrift cell is checkpointed mid-run, resumed in fresh objects,
//! and the resumed report must match the straight-through run
//! byte-for-byte (DESIGN.md §5h).

use mtm::arbiter::{ArbiterKind, TenantDemand};
use mtm_scenario::{
    restore_checkpoint, save_checkpoint, ChurnEvent, ChurnSchedule, Serving, ServingConfig,
};
use tiersim::sim::{run_scenario, MemoryManager, RunReport, ScenarioProgress, Workload};
use tiersim::tenant::{split_capacity, TenantId};
use tiersim::tier::{optane_four_tier, Topology};
use tiersim::Machine;

use crate::multitenant::{build_tenant_manager, interval_ns_per_op, p99};
use crate::opts::Opts;
use crate::runs::{build_manager, healthy_machine_for};
use crate::tablefmt::{f, TextTable};

/// The serving generators the sweep covers (overridable to one via
/// `MTM_SCENARIO_SET`).
pub const SCENARIO_GENERATORS: [&str; 3] = ["KVDrift", "Diurnal", "FlashCrowd"];

/// The managers each generator runs under: the overall sweep's tiering
/// systems minus the two static references (`hmc` is hardware-managed
/// and `vanilla-autonuma` differs from `autonuma` only in balancing
/// details invisible to phase metrics).
pub const SCENARIO_MANAGERS: [&str; 5] =
    ["first-touch", "autonuma", "autotiering", "hemem", "MTM"];

/// The arbiter the churn cell runs under.
pub const CHURN_ARBITER: ArbiterKind = ArbiterKind::HotnessWeighted;

/// Base seed churn-tenant workload salts are derived from (per tenant
/// name, like the multi-tenant sweep's `TENANT_SALT_BASE`).
const SCENARIO_SALT_BASE: u64 = 0x5C3A_11D0;

/// Builds the named generator's configuration for a run of `intervals`.
/// The schedules are derived from the run length so every shape shows
/// several phases at any `MTM_SCENARIO_INTERVALS`.
pub fn generator_config(
    name: &str,
    scale: u64,
    threads: usize,
    intervals: u64,
) -> Option<ServingConfig> {
    match name {
        "KVDrift" => Some(ServingConfig::kv_drift(scale, threads, (intervals / 6).max(2))),
        "Diurnal" => Some(ServingConfig::diurnal(scale, threads, (intervals / 3).max(4))),
        "FlashCrowd" => Some(ServingConfig::flash_crowd(scale, threads, intervals)),
        _ => None,
    }
}

/// The interval indices where a generator's traffic shape shifts: drift
/// rotations, diurnal half-periods (the load direction flips), and both
/// edges of the flash window. Interval 0 is never a boundary (there is
/// no "before" to restabilize from).
pub fn phase_boundaries(cfg: &ServingConfig, intervals: u64) -> Vec<u64> {
    let mut b = Vec::new();
    if cfg.drift_every > 0 {
        let mut t = cfg.drift_every;
        while t < intervals {
            b.push(t);
            t += cfg.drift_every;
        }
    }
    if cfg.diurnal_period > 1 {
        let half = (cfg.diurnal_period / 2).max(1);
        let mut t = half;
        while t < intervals {
            b.push(t);
            t += half;
        }
    }
    if cfg.flash_boost > 1.0 && cfg.flash_at > 0 {
        if cfg.flash_at < intervals {
            b.push(cfg.flash_at);
        }
        let end = cfg.flash_at + cfg.flash_len;
        if end < intervals {
            b.push(end);
        }
    }
    b.sort_unstable();
    b.dedup();
    b
}

/// Intervals after `boundary` until per-interval migration traffic falls
/// to `threshold` or below, capped at the phase length (`next` is the
/// next boundary, or the run length). A boundary the system never
/// recovers from inside its phase scores the full phase.
fn settle_time(migrated: &[u64], boundary: usize, next: usize, threshold: u64) -> u64 {
    for (k, &v) in migrated[boundary..next.min(migrated.len())].iter().enumerate() {
        if v <= threshold {
            return k as u64;
        }
    }
    next.saturating_sub(boundary) as u64
}

/// Phase metrics of one report: mean intervals-to-restabilize across
/// boundaries, mean migration bytes per phase, and the p99 ns/op inside
/// the transient windows over the median ns/op outside them.
struct PhaseMetrics {
    resettle: f64,
    phase_bytes: f64,
    transient_p99: f64,
}

/// Nearest-rank median of the finite entries; infinity when none are.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.retain(|x| x.is_finite());
    if xs.is_empty() {
        return f64::INFINITY;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite entries compare"));
    xs[(xs.len() - 1) / 2]
}

fn phase_metrics(r: &RunReport, boundaries: &[u64], intervals: u64) -> PhaseMetrics {
    let migrated = &r.telemetry.series.migrated_bytes;
    let n = migrated.len().min(intervals as usize);
    // "Settled" means migration traffic at or below half the run's mean
    // per-interval volume: a burst-shaped series (quiet phases, spikes
    // at shifts) drops under this quickly once re-placement is done.
    let mean = if n > 0 { migrated[..n].iter().sum::<u64>() / n as u64 } else { 0 };
    let threshold = mean / 2;

    // Phase edges: 0, each boundary, run end.
    let mut edges: Vec<usize> = vec![0];
    edges.extend(boundaries.iter().map(|&b| b as usize).filter(|&b| b < n));
    edges.push(n);
    edges.dedup();

    let mut settles = Vec::new();
    let mut transient = vec![false; n];
    for w in edges.windows(2).skip(1) {
        let (b, next) = (w[0], w[1]);
        let s = settle_time(migrated, b, next, threshold);
        settles.push(s as f64);
        // The transient window covers at least the boundary interval.
        for slot in transient.iter_mut().take(next.min(b + (s as usize).max(1))).skip(b) {
            *slot = true;
        }
    }
    let phase_sums: Vec<f64> = edges
        .windows(2)
        .map(|w| migrated[w[0]..w[1]].iter().sum::<u64>() as f64)
        .collect();

    let ns_per_op = interval_ns_per_op(r);
    let (mut hot, mut calm) = (Vec::new(), Vec::new());
    for (i, &v) in ns_per_op.iter().take(n).enumerate() {
        if transient[i] {
            hot.push(v);
        } else {
            calm.push(v);
        }
    }
    let steady = median(calm);
    let transient_p99 =
        if settles.is_empty() || !steady.is_finite() { f64::NAN } else { p99(hot) / steady };

    PhaseMetrics {
        resettle: if settles.is_empty() {
            f64::NAN
        } else {
            settles.iter().sum::<f64>() / settles.len() as f64
        },
        phase_bytes: if phase_sums.is_empty() {
            0.0
        } else {
            phase_sums.iter().sum::<f64>() / phase_sums.len() as f64
        },
        transient_p99,
    }
}

/// Runs one (generator, manager) cell on a healthy four-tier machine.
pub fn run_serving(generator: &str, manager: &str, opts: &Opts, intervals: u64) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut machine = healthy_machine_for(manager, opts, topo.clone());
    let mut mgr = build_manager(manager, opts, &topo);
    let cfg = generator_config(generator, opts.scale, opts.threads, intervals)
        .unwrap_or_else(|| panic!("unknown generator {generator:?}"));
    let mut wl = Serving::new(cfg);
    run_scenario(&mut machine, mgr.as_mut(), &mut wl, intervals)
}

/// One live tenant of the churn cell.
struct ChurnTenant {
    name: String,
    workload_name: String,
    /// Externally-imposed weight multiplier (resize events rescale it);
    /// applied to the arbiter's demand-derived weight driver-side, so
    /// the arbiter API stays churn-free.
    weight: f64,
    arrived: u64,
    machine: Machine,
    manager: Box<dyn MemoryManager>,
    workload: Box<dyn Workload>,
    progress: Option<ScenarioProgress>,
    prev_accesses: u64,
}

impl ChurnTenant {
    fn accesses_delta(&mut self) -> u64 {
        let total: u64 = self.machine.counters().all().iter().map(|c| c.total()).sum();
        let delta = total.saturating_sub(self.prev_accesses);
        self.prev_accesses = total;
        delta
    }
}

/// One finished churn tenant: its lifetime and report.
pub struct ChurnOutcome {
    /// Stable tenant name.
    pub name: String,
    /// Generator name.
    pub workload: String,
    /// Arrival interval.
    pub arrived: u64,
    /// First interval *not* run (the depart boundary, or the run end).
    pub departed: u64,
    /// The tenant's run report.
    pub report: RunReport,
}

/// Re-splits capacity, migration budget and profiling share across the
/// live tenants (the `multitenant::arbitrate` logic, plus the schedule's
/// per-tenant weight multipliers).
fn arbitrate_churn(
    policy: &mut dyn mtm::ArbiterPolicy,
    runs: &mut [ChurnTenant],
    topo: &Topology,
    promote_pool: u64,
) {
    if runs.is_empty() {
        return;
    }
    let dram: Vec<u16> = topo.dram_components();
    let demands: Vec<TenantDemand> = runs
        .iter_mut()
        .enumerate()
        .map(|(i, r)| TenantDemand {
            tenant: i as TenantId,
            // As in the multi-tenant driver: a just-arrived tenant has no
            // VMAs yet, so the declared footprint stands in for its first
            // grant (the two agree once setup ran).
            footprint: r.workload.footprint().max(r.workload.declared_footprint()),
            fast_resident: dram.iter().map(|&c| r.machine.allocator(c).used()).sum(),
            accesses: r.accesses_delta(),
        })
        .collect();
    let mut weights = policy.weights(&demands);
    for (w, r) in weights.iter_mut().zip(runs.iter()) {
        *w *= r.weight;
    }
    let total_capacity: u64 = (0..topo.num_components())
        .map(|c| topo.components[c].capacity & !(tiersim::PAGE_SIZE_2M - 1))
        .sum();
    let weights = mtm::arbiter::floor_shares(&weights, &demands, total_capacity);
    let shares = mtm::arbiter::shares(&weights, promote_pool);
    for c in 0..topo.num_components() as u16 {
        let capacity = topo.components[c as usize].capacity & !(tiersim::PAGE_SIZE_2M - 1);
        let floors: Vec<u64> = runs.iter().map(|r| r.machine.allocator(c).used()).collect();
        let quotas = split_capacity(capacity, &weights, &floors);
        for (r, &q) in runs.iter_mut().zip(&quotas) {
            r.machine.set_component_quota(c, q);
        }
    }
    for (r, s) in runs.iter_mut().zip(&shares) {
        r.manager.set_share(*s);
    }
}

/// Runs the churn cell: the schedule's tenants under `manager` and
/// [`CHURN_ARBITER`], arriving, resizing and departing at interval
/// boundaries. Events apply *before* arbitration, so an arriving
/// tenant's setup already runs under an arbitrated grant and a departed
/// tenant's capacity returns to the pool the same boundary. Outcomes are
/// ordered by (arrival, schedule order).
pub fn run_churn_cell(
    manager: &str,
    schedule: &ChurnSchedule,
    opts: &Opts,
    intervals: u64,
) -> Vec<ChurnOutcome> {
    let topo = optane_four_tier(opts.scale);
    // Half-footprint tenants: two residents fill the machine like one
    // solo run, leaving headroom the mid-run arrival competes for.
    let workload_scale = opts.scale * 2;
    let mut policy = CHURN_ARBITER.build();
    let mut live: Vec<ChurnTenant> = Vec::new();
    let mut done: Vec<ChurnOutcome> = Vec::new();
    let mut next_tenant: TenantId = 0;

    for ivl in 0..intervals {
        let mut arrived_now: Vec<usize> = Vec::new();
        for event in schedule.at(ivl) {
            match event {
                ChurnEvent::Arrive { name, workload, weight } => {
                    let cfg =
                        generator_config(workload, workload_scale, opts.threads, intervals)
                            .unwrap_or_else(|| panic!("unknown generator {workload:?}"));
                    let mut cfg = cfg;
                    cfg.seed ^= faultsim::derive_seed(SCENARIO_SALT_BASE, name);
                    let mut machine = healthy_machine_for(manager, opts, topo.clone());
                    if mtm_check::enabled() {
                        machine.set_checking(true);
                    }
                    live.push(ChurnTenant {
                        name: name.clone(),
                        workload_name: workload.clone(),
                        weight: *weight,
                        arrived: ivl,
                        machine,
                        manager: build_tenant_manager(manager, next_tenant, opts, &topo),
                        workload: Box::new(Serving::new(cfg)),
                        progress: None,
                        prev_accesses: 0,
                    });
                    next_tenant += 1;
                    arrived_now.push(live.len() - 1);
                }
                ChurnEvent::Depart { name } => {
                    let i = live
                        .iter()
                        .position(|r| &r.name == name)
                        .unwrap_or_else(|| panic!("depart of unknown tenant {name:?}"));
                    let mut r = live.remove(i);
                    let progress = r.progress.take().expect("departing tenant was started");
                    let report =
                        progress.finish(&mut r.machine, r.manager.as_mut(), r.workload.as_mut());
                    done.push(ChurnOutcome {
                        name: r.name,
                        workload: r.workload_name,
                        arrived: r.arrived,
                        departed: ivl,
                        report,
                    });
                    arrived_now = Vec::new();
                    for (k, t) in live.iter().enumerate() {
                        if t.progress.is_none() {
                            arrived_now.push(k);
                        }
                    }
                }
                ChurnEvent::Resize { name, weight } => {
                    let r = live
                        .iter_mut()
                        .find(|r| &r.name == name)
                        .unwrap_or_else(|| panic!("resize of unknown tenant {name:?}"));
                    r.weight = *weight;
                }
            }
        }
        arbitrate_churn(policy.as_mut(), &mut live, &topo, opts.promote_budget());
        for &i in &arrived_now {
            let r = &mut live[i];
            r.progress = Some(ScenarioProgress::start(
                &mut r.machine,
                r.manager.as_mut(),
                r.workload.as_mut(),
            ));
        }
        for r in &mut live {
            let mut progress = r.progress.take().expect("live tenants are started");
            progress.step_interval(&mut r.machine, r.manager.as_mut(), r.workload.as_mut(), ivl);
            r.progress = Some(progress);
        }
    }
    for mut r in live {
        let progress = r.progress.take().expect("live tenants are started");
        let report = progress.finish(&mut r.machine, r.manager.as_mut(), r.workload.as_mut());
        done.push(ChurnOutcome {
            name: r.name,
            workload: r.workload_name,
            arrived: r.arrived,
            departed: intervals,
            report,
        });
    }
    done.sort_by(|a, b| (a.arrived, a.name.clone()).cmp(&(b.arrived, b.name.clone())));
    done
}

/// Checkpoints the MTM/KVDrift cell mid-run, resumes it in fresh
/// objects, and verifies the resumed report matches `straight`
/// byte-for-byte. Returns the summary line for the table footer.
fn checkpoint_differential(straight: &RunReport, opts: &Opts, intervals: u64) -> String {
    let stop_at = (intervals / 2).max(1);
    let topo = optane_four_tier(opts.scale);
    let build = || {
        let machine = healthy_machine_for("MTM", opts, topo.clone());
        let mgr = build_manager("MTM", opts, &topo);
        let cfg = generator_config("KVDrift", opts.scale, opts.threads, intervals)
            .expect("KVDrift is a generator");
        (machine, mgr, Serving::new(cfg))
    };
    let (mut m, mut mgr, mut wl) = build();
    let mut progress = ScenarioProgress::start(&mut m, mgr.as_mut(), &mut wl);
    for ivl in 0..stop_at {
        progress.step_interval(&mut m, mgr.as_mut(), &mut wl, ivl);
    }
    let blob = save_checkpoint(&m, mgr.as_ref(), &wl, &progress, stop_at)
        .expect("the MTM/KVDrift stack checkpoints");
    let (mut m, mut mgr, mut wl) = build();
    let (mut progress, next) = restore_checkpoint(&blob, &mut m, mgr.as_mut(), &mut wl)
        .expect("the checkpoint restores");
    for ivl in next..intervals {
        progress.step_interval(&mut m, mgr.as_mut(), &mut wl, ivl);
    }
    let resumed = progress.finish(&mut m, mgr.as_mut(), &mut wl);
    let fp = |r: &RunReport| format!("{r:?}\n{}", r.telemetry.to_json());
    assert_eq!(
        fp(&resumed),
        fp(straight),
        "resumed MTM/KVDrift run diverged from the straight-through run"
    );
    format!(
        "checkpoint   MTM/KVDrift saved at interval {stop_at} ({} bytes), resumed run \
         byte-identical\n",
        blob.len()
    )
}

/// The run length, from `MTM_SCENARIO_INTERVALS` (default: the shared
/// `MTM_INTERVALS`/quick-mode length). Malformed values print a
/// `warning:` line and keep the default.
pub fn scenario_intervals(opts: &Opts) -> u64 {
    match std::env::var("MTM_SCENARIO_INTERVALS") {
        Ok(s) if !s.is_empty() => match s.parse::<u64>() {
            Ok(n) if n >= 4 => n,
            _ => {
                eprintln!(
                    "warning: ignoring MTM_SCENARIO_INTERVALS={s:?} \
                     (expected an interval count >= 4)"
                );
                opts.intervals
            }
        },
        _ => opts.intervals,
    }
}

/// The generators this invocation sweeps and whether the churn cell
/// runs, from `MTM_SCENARIO_SET` (a generator name, or `churn`). Unset
/// keeps everything; malformed values print a `warning:` line and keep
/// everything rather than silently running something else.
pub fn env_axes() -> (Vec<&'static str>, bool) {
    match std::env::var("MTM_SCENARIO_SET") {
        Ok(s) if !s.is_empty() => {
            if s == "churn" {
                (Vec::new(), true)
            } else if let Some(g) = SCENARIO_GENERATORS.iter().find(|&&g| g == s) {
                (vec![*g], false)
            } else {
                eprintln!(
                    "warning: MTM_SCENARIO_SET={s:?} is not a scenario \
                     (KVDrift|Diurnal|FlashCrowd|churn); sweeping all"
                );
                (SCENARIO_GENERATORS.to_vec(), true)
            }
        }
        _ => (SCENARIO_GENERATORS.to_vec(), true),
    }
}

/// True when the sweep shape is unrestricted (the full-table shape the
/// committed `results/scenarios.txt` is generated with).
pub fn axes_unrestricted() -> bool {
    std::env::var("MTM_SCENARIO_SET").map_or(true, |s| s.is_empty())
        && std::env::var("MTM_SCENARIO_INTERVALS").map_or(true, |s| s.is_empty())
}

/// Renders the scenario sweep over explicit axes (the env-driven entry
/// point is [`run`]).
pub fn render(opts: &Opts, generators: &[&str], churn: bool, intervals: u64) -> String {
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for gi in 0..generators.len() {
        for mi in 0..SCENARIO_MANAGERS.len() {
            cells.push((gi, mi));
        }
    }
    let reports = crate::runpool::map_parallel(cells.clone(), |(gi, mi)| {
        run_serving(generators[gi], SCENARIO_MANAGERS[mi], opts, intervals)
    });

    let mut serving = TextTable::new(&[
        "generator", "manager", "ns/op", "resettle", "phase-mig", "transient-p99",
    ]);
    for (ci, &(gi, mi)) in cells.iter().enumerate() {
        let r = &reports[ci];
        let cfg = generator_config(generators[gi], opts.scale, opts.threads, intervals)
            .expect("swept generators exist");
        let m = phase_metrics(r, &phase_boundaries(&cfg, intervals), intervals);
        serving.row(vec![
            generators[gi].to_string(),
            SCENARIO_MANAGERS[mi].to_string(),
            f(r.ns_per_op()),
            f(m.resettle),
            opts.paper_bytes(m.phase_bytes as u64),
            format!("{}x", f(m.transient_p99)),
        ]);
    }

    let mut out = format!("Scenario sweep ({intervals} intervals)\n\n");
    out.push_str(&serving.render());
    out.push('\n');

    if churn {
        let schedule = ChurnSchedule::serving_default(intervals);
        let outcomes = run_churn_cell("MTM", &schedule, opts, intervals);
        let mut table = TextTable::new(&[
            "tenant", "workload", "arrive", "depart", "intervals", "ns/op", "migrated",
        ]);
        for o in &outcomes {
            let migrated: u64 = o.report.telemetry.series.migrated_bytes.iter().sum();
            table.row(vec![
                o.name.clone(),
                o.workload.clone(),
                o.arrived.to_string(),
                if o.departed == intervals { "end".to_string() } else { o.departed.to_string() },
                (o.departed - o.arrived).to_string(),
                f(o.report.ns_per_op()),
                opts.paper_bytes(migrated),
            ]);
        }
        out.push_str(&format!(
            "Tenant churn (MTM, {} arbiter, {} scheduled events)\n\n",
            CHURN_ARBITER.label(),
            schedule.events().len()
        ));
        out.push_str(&table.render());
        out.push('\n');
    }

    if generators.contains(&"KVDrift") {
        let ci = cells
            .iter()
            .position(|&(gi, mi)| {
                generators[gi] == "KVDrift" && SCENARIO_MANAGERS[mi] == "MTM"
            })
            .expect("the MTM/KVDrift cell is in the sweep");
        out.push_str(&checkpoint_differential(&reports[ci], opts, intervals));
    }

    out.push_str(
        "\nresettle       mean intervals after a traffic shift until per-interval migration\n\
         \x20              falls to half the run mean or below\n\
         phase-mig      mean migration volume per phase, at paper scale\n\
         transient-p99  p99 ns/op inside the transient windows over the steady-state median\n",
    );
    out
}

/// Renders the sweep with the env-selected shape (`MTM_SCENARIO_SET`,
/// `MTM_SCENARIO_INTERVALS`).
pub fn run(opts: &Opts) -> String {
    let (generators, churn) = env_axes();
    render(opts, &generators, churn, scenario_intervals(opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_follow_the_generator_schedule() {
        let drift = generator_config("KVDrift", 1 << 12, 2, 24).unwrap();
        assert_eq!(phase_boundaries(&drift, 24), vec![4, 8, 12, 16, 20]);
        let flash = generator_config("FlashCrowd", 1 << 12, 2, 30).unwrap();
        assert_eq!(phase_boundaries(&flash, 30), vec![10, 15]);
        let diurnal = generator_config("Diurnal", 1 << 12, 2, 24).unwrap();
        assert_eq!(phase_boundaries(&diurnal, 24), vec![4, 8, 12, 16, 20]);
        assert!(generator_config("GUPS", 1 << 12, 2, 24).is_none());
    }

    #[test]
    fn settle_time_scans_to_the_phase_edge() {
        let m = [0, 9, 9, 4, 1, 9, 9, 9];
        assert_eq!(settle_time(&m, 1, 5, 4), 2, "first value at/below threshold");
        assert_eq!(settle_time(&m, 5, 8, 4), 3, "never settles: full phase");
        assert_eq!(settle_time(&m, 0, 5, 4), 0, "already settled");
    }

    #[test]
    fn median_is_nearest_rank_over_finite_entries() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(vec![f64::INFINITY, 5.0]), 5.0);
        assert_eq!(median(vec![]), f64::INFINITY);
    }

    #[test]
    fn churn_cell_runs_the_default_schedule() {
        let mut opts = Opts::quick();
        opts.scale = 1 << 14;
        opts.threads = 2;
        let intervals = 8;
        let outcomes =
            run_churn_cell("MTM", &ChurnSchedule::serving_default(intervals), &opts, intervals);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].name, "t00");
        assert_eq!(outcomes[0].arrived, 0);
        assert_eq!(outcomes[0].departed, intervals);
        let t02 = outcomes.iter().find(|o| o.name == "t02").expect("t02 churns");
        assert_eq!(t02.arrived, 2, "arrives at the quarter boundary");
        assert_eq!(t02.departed, 6, "departs at the three-quarter boundary");
        assert_eq!(t02.report.telemetry.series.migrated_bytes.len(), 4);
        assert!(t02.report.ops_completed > 0);
    }

    #[test]
    fn churn_cell_is_deterministic_across_calls() {
        let mut opts = Opts::quick();
        opts.scale = 1 << 14;
        opts.threads = 2;
        let schedule = ChurnSchedule::serving_default(6);
        let a = run_churn_cell("MTM", &schedule, &opts, 6);
        let b = run_churn_cell("MTM", &schedule, &opts, 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{:?}", x.report), format!("{:?}", y.report));
            assert_eq!(x.report.telemetry.to_json(), y.report.telemetry.to_json());
        }
    }
}
