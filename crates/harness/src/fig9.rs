//! Fig. 9: sensitivity to the merge/split thresholds tau_m and tau_s on
//! VoltDB, for num_scans = 3 and 6.

use mtm::MtmManager;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::run_scenario;
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::runs::mtm_config;
use crate::tablefmt::{dur, TextTable};

/// The paper's grid: `(num_scans, tau_m, tau_s)`.
pub const GRID: [(u32, f64, f64); 12] = [
    (3, 0.0, 3.0),
    (3, 1.0, 1.0),
    (3, 1.0, 2.0),
    (3, 2.0, 0.0),
    (3, 2.0, 1.0),
    (3, 3.0, 0.0),
    (6, 0.0, 6.0),
    (6, 2.0, 2.0),
    (6, 2.0, 4.0),
    (6, 4.0, 0.0),
    (6, 4.0, 2.0),
    (6, 6.0, 0.0),
];

/// Runs the grid (independent runs, in parallel on the worker pool);
/// returns `(num_scans, tau_m, tau_s, total_ns)` in grid order.
pub fn measure(opts: &Opts) -> Vec<(u32, f64, f64, f64)> {
    crate::runpool::map_parallel(GRID.to_vec(), |(scans, tau_m, tau_s)| {
        let topo = optane_four_tier(opts.scale);
        let mut mc = MachineConfig::new(topo.clone(), opts.threads);
        mc.interval_ns = opts.interval_ns;
        let mut machine = Machine::new(mc);
        let mut cfg = mtm_config(opts).with_num_scans(scans);
        cfg.tau_m = tau_m;
        cfg.tau_s = tau_s;
        let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
        let mut wl = mtm_workloads::build_paper_workload("VoltDB", opts.scale, opts.threads)
            .expect("VoltDB exists");
        let r = run_scenario(&mut machine, &mut mgr, wl.as_mut(), opts.intervals);
        (scans, tau_m, tau_s, r.ns_per_op_steady() * 1e6)
    })
}

/// Renders Fig. 9.
pub fn run(opts: &Opts) -> String {
    let rows = measure(opts);
    let mut table = TextTable::new(&["num_scans", "(tau_m, tau_s)", "time per 1M txns"]);
    let mut best: Option<(f64, String)> = None;
    for (scans, tm, ts, total) in &rows {
        let label = format!("({tm:.0}, {ts:.0})");
        if best.as_ref().map(|(b, _)| total < b).unwrap_or(true) {
            best = Some((*total, format!("num_scans={scans} {label}")));
        }
        table.row(vec![scans.to_string(), label, dur(*total)]);
    }
    format!(
        "Fig. 9 — Sensitivity to tau_m and tau_s (VoltDB)\n\n{}\nbest configuration: {}\n(paper: tau_m=1, tau_s=2 best for num_scans=3 — the defaults)\n",
        table.render(),
        best.map(|(_, l)| l).unwrap_or_default()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_reports() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 3;
        o.threads = 2;
        let rows = measure(&o);
        assert_eq!(rows.len(), GRID.len());
        assert!(rows.iter().all(|&(_, _, _, t)| t > 0.0));
    }
}
