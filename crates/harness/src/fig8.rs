//! Fig. 8: execution time under various profiling-overhead targets
//! (1%..10%) on VoltDB with a halved profiling interval (the paper uses
//! 5 s there instead of 10 s).

use mtm::MtmManager;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::run_scenario;
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::runs::mtm_config;
use crate::tablefmt::{dur, TextTable};

/// The sweep points of the paper.
pub const TARGETS: [f64; 5] = [0.01, 0.02, 0.03, 0.05, 0.10];

/// Runs the sweep (each target an independent run, executed in parallel
/// on the worker pool) and returns `(target, app, profiling, migration)`
/// rows in sweep order, each normalized to 1M transactions of work.
pub fn measure(opts: &Opts) -> Vec<(f64, f64, f64, f64)> {
    crate::runpool::map_parallel(TARGETS.to_vec(), |target| {
        let topo = optane_four_tier(opts.scale);
        let mut mc = MachineConfig::new(topo.clone(), opts.threads);
        mc.interval_ns = opts.interval_ns / 2.0; // The paper's 5 s interval.
        let mut machine = Machine::new(mc);
        let mut cfg = mtm_config(opts);
        cfg.overhead_target = target;
        let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
        let mut wl = mtm_workloads::build_paper_workload("VoltDB", opts.scale, opts.threads)
            .expect("VoltDB exists");
        let r = run_scenario(&mut machine, &mut mgr, wl.as_mut(), opts.intervals);
        let (b, ops) = r.steady();
        let k = 1e6 / ops.max(1) as f64;
        (target, b.app_ns * k, b.profiling_ns * k, b.migration_ns * k)
    })
}

/// Renders Fig. 8.
pub fn run(opts: &Opts) -> String {
    let rows = measure(opts);
    let mut table =
        TextTable::new(&["overhead target", "app", "profiling", "migration", "total"]);
    for (target, app, prof, mig) in &rows {
        table.row(vec![
            format!("{:.0}%", target * 100.0),
            dur(*app),
            dur(*prof),
            dur(*mig),
            dur(app + prof + mig),
        ]);
    }
    format!(
        "Fig. 8 — Execution time per 1M transactions with various profiling overhead targets (VoltDB, halved interval)\n\n{}\n(paper: quality improves up to ~5%, then extra profiling costs more than it helps)\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_time_scales_with_target() {
        let mut o = Opts::quick();
        // Just above the warehouse floor: two warehouses at full spec
        // density, so VoltDB has enough regions for Eq. 1's budget to
        // bite (deeper scales thin the tables and the one-sample floor
        // flattens the sweep entirely).
        o.scale = 1 << 11;
        o.intervals = 4;
        o.threads = 2;
        let rows = measure(&o);
        assert_eq!(rows.len(), TARGETS.len());
        let p1 = rows[0].2;
        let p10 = rows[4].2;
        // At tiny test scale the one-sample-per-region floor dominates the
        // Eq. 1 budget, so only a modest monotone gap is checkable here;
        // the shipped fig8 run at full scale shows the full spread.
        assert!(p10 > p1 * 1.05, "profiling 10% {p10} should exceed 1% {p1}");
    }
}
