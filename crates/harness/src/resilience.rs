//! Robustness sweep: every manager under increasing fault intensity.
//!
//! For each of the eight managers the sweep runs GUPS healthy and under
//! three fault levels (`light`, `medium`, `heavy` — see [`level_spec`]),
//! then reports per run: slowdown versus the same manager's healthy run,
//! injections that actually fired, how the resilience machinery responded
//! (retries, transactional aborts, sync→async deferrals, transient
//! drops), and how many intervals the run needed to recover after the
//! bandwidth-degradation window closed.
//!
//! Every run draws its schedule from a label-derived SplitMix64 stream
//! seeded off `MTM_FAULT_SEED`, so the whole table is byte-identical for
//! any `MTM_JOBS` value. The sweep deliberately bypasses both the run
//! cache (plans are not part of its key) and the `MTM_FAULTS`
//! environment plumbing (the levels are the experiment).

use crate::opts::Opts;
use crate::runs::{run_pair_with_faults, OVERALL_MANAGERS};
use crate::tablefmt::{f, TextTable};
use tiersim::sim::RunReport;

/// The eight managers of the robustness sweep: the overall-evaluation
/// seven plus Thermostat.
pub const RESILIENCE_MANAGERS: [&str; 8] = [
    OVERALL_MANAGERS[0],
    OVERALL_MANAGERS[1],
    OVERALL_MANAGERS[2],
    OVERALL_MANAGERS[3],
    OVERALL_MANAGERS[4],
    OVERALL_MANAGERS[5],
    OVERALL_MANAGERS[6],
    "thermostat",
];

/// Fault levels, mild to severe. `healthy` is the reference run.
pub const LEVELS: [&str; 4] = ["healthy", "light", "medium", "heavy"];

/// The workload the sweep stresses (GUPS: uniformly hot, migration-heavy,
/// the workload most sensitive to lost migrations).
pub const WORKLOAD: &str = "GUPS";

/// The bandwidth-degradation window for a run of `intervals` intervals:
/// the middle third, so every run has a pre-fault warmup and a
/// post-fault recovery phase. The window is clamped to the run — the
/// unclamped `(2*intervals/3).max(a+1)` exceeds `intervals` for tiny
/// interval counts, yielding a window that never closes and a recovery
/// column measured from beyond the end of the run.
pub fn bw_window(intervals: u64) -> (u64, u64) {
    let a = (intervals / 3).max(1);
    let b = (2 * intervals / 3).max(a + 1).min(intervals);
    (a.min(b.saturating_sub(1)), b)
}

/// The `MTM_FAULTS`-grammar spec of one level, or `None` for `healthy`.
/// Panics on an unknown level name.
pub fn level_spec(level: &str, intervals: u64) -> Option<String> {
    let (a, b) = bw_window(intervals);
    match level {
        "healthy" => None,
        "light" => Some("busy=0.05,allocfail=0.02,droppebs=0.05,drophint=0.05".into()),
        "medium" => {
            Some(format!("busy=0.2,allocfail=0.1,droppebs=0.25,drophint=0.25,bw=0.5@{a}..{b}"))
        }
        "heavy" => {
            Some(format!("busy=0.5,allocfail=0.25,droppebs=0.5,drophint=0.5,bw=0.25@{a}..{b}"))
        }
        _ => panic!("unknown fault level {level:?}"),
    }
}

/// Runs one sweep cell. Public so tests can replay a single cell and
/// compare against the table.
pub fn run_cell(manager: &str, level: &str, opts: &Opts, base_seed: u64) -> RunReport {
    let faults = level_spec(level, opts.intervals).map(|spec| {
        let plan = faultsim::FaultPlan::parse(&spec).expect("built-in level specs parse");
        (plan, faultsim::derive_seed(base_seed, &format!("{manager}/{level}")))
    });
    run_pair_with_faults(manager, WORKLOAD, opts, faults)
}

/// How a run's wall time behaved after the bandwidth window closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Recovery {
    /// Back within 10% of the healthy mean this many intervals after the
    /// window closed.
    After(u64),
    /// Observed past the window but never returned to healthy.
    Never,
    /// Nothing to judge: the run recorded no intervals past the window
    /// (tiny `MTM_QUICK` runs) or the healthy reference recorded none at
    /// all. Reported as `n/a`, not as a bogus `never`.
    NotObservable,
}

/// Intervals until the wall time per interval returns to within 10% of
/// the healthy run's mean, counted from the end of the bandwidth window.
fn recovery_intervals(faulty: &RunReport, healthy: &RunReport, window_end: u64) -> Recovery {
    let walls = &faulty.telemetry.series.wall_ns;
    let healthy_walls = &healthy.telemetry.series.wall_ns;
    if healthy_walls.is_empty() || window_end as usize >= walls.len() {
        return Recovery::NotObservable;
    }
    let healthy_mean = healthy_walls.iter().sum::<f64>() / healthy_walls.len() as f64;
    walls
        .iter()
        .enumerate()
        .skip(window_end as usize)
        .find(|&(_, &w)| w <= 1.1 * healthy_mean)
        .map_or(Recovery::Never, |(i, _)| Recovery::After(i as u64 - window_end))
}

/// Renders the robustness table.
pub fn run(opts: &Opts) -> String {
    let (base_seed, seed_warning) = faultsim::plan::seed_from_env();
    if let Some(w) = seed_warning {
        eprintln!("warning: {w}");
    }
    let cells: Vec<(usize, usize)> = (0..RESILIENCE_MANAGERS.len())
        .flat_map(|mi| (0..LEVELS.len()).map(move |li| (mi, li)))
        .collect();
    let reports = crate::runpool::map_parallel(cells, |(mi, li)| {
        run_cell(RESILIENCE_MANAGERS[mi], LEVELS[li], opts, base_seed)
    });
    let report = |mi: usize, li: usize| -> &RunReport { &reports[mi * LEVELS.len() + li] };

    let (_, window_end) = bw_window(opts.intervals);
    let mut t = TextTable::new(&[
        "manager", "faults", "ns/op", "slowdown", "injected", "retries", "aborts", "deferrals",
        "dropped", "recovery",
    ]);
    for (mi, &manager) in RESILIENCE_MANAGERS.iter().enumerate() {
        let healthy = report(mi, 0);
        for (li, &level) in LEVELS.iter().enumerate() {
            let r = report(mi, li);
            let reg = &r.telemetry.registry;
            let injected = reg.counter(obs::names::FAULT_PAGE_BUSY)
                + reg.counter(obs::names::FAULT_ALLOC_FAIL)
                + reg.counter(obs::names::FAULT_PEBS_LOST)
                + reg.counter(obs::names::FAULT_HINTS_LOST);
            let slowdown = if li == 0 {
                "1.00x".to_string()
            } else if healthy.ns_per_op().is_finite() && healthy.ns_per_op() > 0.0 {
                format!("{}x", f(r.ns_per_op() / healthy.ns_per_op()))
            } else {
                "n/a".to_string()
            };
            // Recovery only makes sense for levels with a bandwidth
            // window (medium/heavy).
            let recovery = if level_spec(level, opts.intervals)
                .is_some_and(|s| s.contains("bw="))
            {
                match recovery_intervals(r, healthy, window_end) {
                    Recovery::After(n) => format!("{n} iv"),
                    Recovery::Never => "never".to_string(),
                    Recovery::NotObservable => "n/a".to_string(),
                }
            } else {
                "-".to_string()
            };
            t.row(vec![
                manager.to_string(),
                level.to_string(),
                f(r.ns_per_op()),
                slowdown,
                injected.to_string(),
                reg.counter(obs::names::MIGRATION_RETRIES).to_string(),
                reg.counter(obs::names::MIGRATION_ABORTS).to_string(),
                reg.counter(obs::names::MIGRATION_DEFERRALS).to_string(),
                reg.counter(obs::names::MIGRATIONS_DROPPED_TRANSIENT).to_string(),
                recovery,
            ]);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Robustness under injected faults ({WORKLOAD}, {} intervals, seed {base_seed})\n\n",
        opts.intervals
    ));
    out.push_str(&t.render());
    out.push('\n');
    for &level in &LEVELS[1..] {
        let spec = level_spec(level, opts.intervals).expect("non-healthy levels have a spec");
        out.push_str(&format!("{level:<7} = MTM_FAULTS=\"{spec}\"\n"));
    }
    out.push_str(
        "\nslowdown  vs the same manager's healthy run (ns/op ratio)\n\
         injected  faults that actually fired (busy + alloc + lost samples)\n\
         recovery  intervals after the bandwidth window closes until the\n\
        \u{20}          per-interval wall time is back within 10% of healthy\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_window_stays_inside_the_run() {
        for intervals in 1..=200 {
            let (a, b) = bw_window(intervals);
            assert!(a < b, "window non-empty for {intervals} intervals");
            assert!(b <= intervals, "window closes inside the run for {intervals} intervals");
        }
        // Committed goldens pin the default and quick-mode windows.
        assert_eq!(bw_window(120), (40, 80));
        assert_eq!(bw_window(12), (4, 8));
    }
}
