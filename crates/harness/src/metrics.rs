//! Profiling-quality metrics: recall and accuracy over address ranges.
//!
//! Fig. 1 of the paper scores a profiler by *recall* (bytes of truly hot
//! pages it detected / bytes of truly hot pages) and *accuracy* (bytes of
//! truly hot pages it detected / bytes it detected). Both reduce to the
//! intersection size of two sets of virtual ranges.

use tiersim::addr::VaRange;

/// Normalizes a range set: sorted, merged, no overlaps.
pub fn normalize(mut ranges: Vec<VaRange>) -> Vec<VaRange> {
    ranges.retain(|r| !r.is_empty());
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<VaRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(prev) if r.start <= prev.end => {
                prev.end = prev.end.max(r.end);
            }
            _ => out.push(r),
        }
    }
    out
}

/// Total bytes covered by a (possibly overlapping) range set.
pub fn total_bytes(ranges: &[VaRange]) -> u64 {
    normalize(ranges.to_vec()).iter().map(|r| r.len()).sum()
}

/// Bytes in the intersection of two range sets.
pub fn intersection_bytes(a: &[VaRange], b: &[VaRange]) -> u64 {
    let a = normalize(a.to_vec());
    let b = normalize(b.to_vec());
    let (mut i, mut j) = (0, 0);
    let mut total = 0u64;
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end.min(b[j].end);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Recall and accuracy of `detected` against `truth`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quality {
    /// Correctly detected / truly hot.
    pub recall: f64,
    /// Correctly detected / detected.
    pub accuracy: f64,
}

/// Computes profiling quality.
pub fn quality(detected: &[VaRange], truth: &[VaRange]) -> Quality {
    let hit = intersection_bytes(detected, truth) as f64;
    let truth_bytes = total_bytes(truth) as f64;
    let detected_bytes = total_bytes(detected) as f64;
    Quality {
        recall: if truth_bytes > 0.0 { hit / truth_bytes } else { 0.0 },
        accuracy: if detected_bytes > 0.0 { hit / detected_bytes } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::VirtAddr;

    fn r(a: u64, b: u64) -> VaRange {
        VaRange::new(VirtAddr(a), VirtAddr(b))
    }

    #[test]
    fn normalize_merges_overlaps() {
        let n = normalize(vec![r(10, 20), r(0, 5), r(15, 30), r(5, 5)]);
        assert_eq!(n, vec![r(0, 5), r(10, 30)]);
        assert_eq!(total_bytes(&[r(10, 20), r(15, 30)]), 20);
    }

    #[test]
    fn intersection_counts_overlap_only() {
        assert_eq!(intersection_bytes(&[r(0, 10)], &[r(5, 15)]), 5);
        assert_eq!(intersection_bytes(&[r(0, 10)], &[r(10, 20)]), 0);
        assert_eq!(intersection_bytes(&[r(0, 10), r(20, 30)], &[r(5, 25)]), 10);
    }

    #[test]
    fn quality_perfect_and_partial() {
        let truth = vec![r(0, 100)];
        let q = quality(&[r(0, 100)], &truth);
        assert_eq!(q, Quality { recall: 1.0, accuracy: 1.0 });
        let q = quality(&[r(0, 50), r(100, 150)], &truth);
        assert!((q.recall - 0.5).abs() < 1e-9);
        assert!((q.accuracy - 0.5).abs() < 1e-9);
        let q = quality(&[], &truth);
        assert_eq!(q, Quality { recall: 0.0, accuracy: 0.0 });
    }
}
