//! Profiling-quality metrics: recall and accuracy over address ranges,
//! plus telemetry collection and export for cached runs.
//!
//! Fig. 1 of the paper scores a profiler by *recall* (bytes of truly hot
//! pages it detected / bytes of truly hot pages) and *accuracy* (bytes of
//! truly hot pages it detected / bytes it detected). Both reduce to the
//! intersection size of two sets of virtual ranges.
//!
//! The telemetry half serializes each run's [`obs::RunTelemetry`] to
//! `results/telemetry/<manager>_<workload>.json` when `MTM_TELEMETRY=1`;
//! with the variable unset nothing is written and the text reports are
//! byte-identical to an uninstrumented build.

use std::path::{Path, PathBuf};

use tiersim::addr::VaRange;

/// Whether telemetry export is enabled (`MTM_TELEMETRY=1`).
pub fn telemetry_enabled() -> bool {
    std::env::var("MTM_TELEMETRY").map(|v| v == "1").unwrap_or(false)
}

/// Default directory telemetry JSON is written under.
pub const TELEMETRY_DIR: &str = "results/telemetry";

/// Makes a manager/workload name filesystem-safe (`MTM-w/o-AMR` contains
/// a path separator; `MTM:fast-first` a drive separator on Windows).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '/' | '\\' | ':' | ' ' => '-',
            _ => c,
        })
        .collect()
}

/// The file a run's telemetry lands in under `dir`.
pub fn telemetry_path(dir: &Path, manager: &str, workload: &str) -> PathBuf {
    dir.join(format!("{}_{}.json", sanitize_name(manager), sanitize_name(workload)))
}

/// Serializes one run's telemetry as JSON under `dir`, creating the
/// directory as needed. Returns the path written.
pub fn emit_telemetry_into(dir: &Path, t: &obs::RunTelemetry) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = telemetry_path(dir, &t.manager, &t.workload);
    std::fs::write(&path, t.to_json())?;
    Ok(path)
}

/// Serializes one run's telemetry under [`TELEMETRY_DIR`].
pub fn emit_telemetry(t: &obs::RunTelemetry) -> std::io::Result<PathBuf> {
    emit_telemetry_into(Path::new(TELEMETRY_DIR), t)
}

/// The file a *tenant's* run telemetry lands in under `dir`:
/// `<tenant>_<manager>_<workload>.json`. The tenant prefix keeps two
/// tenants running the same named workload from clobbering each other's
/// snapshot — the single-tenant path keeps its historical two-part name.
pub fn tenant_telemetry_path(dir: &Path, tenant: &str, manager: &str, workload: &str) -> PathBuf {
    dir.join(format!(
        "{}_{}_{}.json",
        sanitize_name(tenant),
        sanitize_name(manager),
        sanitize_name(workload)
    ))
}

/// Serializes one tenant's run telemetry as JSON under `dir`, creating
/// the directory as needed. Returns the path written.
pub fn emit_tenant_telemetry_into(
    dir: &Path,
    tenant: &str,
    t: &obs::RunTelemetry,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = tenant_telemetry_path(dir, tenant, &t.manager, &t.workload);
    std::fs::write(&path, t.to_json())?;
    Ok(path)
}

/// Merges the registries of several runs (counters and histograms sum,
/// gauges keep their maxima) into one matrix-wide summary registry.
pub fn merge_registries<'a>(runs: impl IntoIterator<Item = &'a obs::RunTelemetry>) -> obs::Registry {
    let mut merged = obs::Registry::default();
    for t in runs {
        merged.merge_from(&t.registry);
    }
    merged
}

/// Normalizes a range set: sorted, merged, no overlaps.
pub fn normalize(mut ranges: Vec<VaRange>) -> Vec<VaRange> {
    ranges.retain(|r| !r.is_empty());
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<VaRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(prev) if r.start <= prev.end => {
                prev.end = prev.end.max(r.end);
            }
            _ => out.push(r),
        }
    }
    out
}

/// Total bytes covered by a (possibly overlapping) range set.
pub fn total_bytes(ranges: &[VaRange]) -> u64 {
    normalize(ranges.to_vec()).iter().map(|r| r.len()).sum()
}

/// Bytes in the intersection of two range sets.
pub fn intersection_bytes(a: &[VaRange], b: &[VaRange]) -> u64 {
    let a = normalize(a.to_vec());
    let b = normalize(b.to_vec());
    let (mut i, mut j) = (0, 0);
    let mut total = 0u64;
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end.min(b[j].end);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Recall and accuracy of `detected` against `truth`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quality {
    /// Correctly detected / truly hot.
    pub recall: f64,
    /// Correctly detected / detected.
    pub accuracy: f64,
}

/// Computes profiling quality.
pub fn quality(detected: &[VaRange], truth: &[VaRange]) -> Quality {
    let hit = intersection_bytes(detected, truth) as f64;
    let truth_bytes = total_bytes(truth) as f64;
    let detected_bytes = total_bytes(detected) as f64;
    Quality {
        recall: if truth_bytes > 0.0 { hit / truth_bytes } else { 0.0 },
        accuracy: if detected_bytes > 0.0 { hit / detected_bytes } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::VirtAddr;

    fn r(a: u64, b: u64) -> VaRange {
        VaRange::new(VirtAddr(a), VirtAddr(b))
    }

    #[test]
    fn normalize_merges_overlaps() {
        let n = normalize(vec![r(10, 20), r(0, 5), r(15, 30), r(5, 5)]);
        assert_eq!(n, vec![r(0, 5), r(10, 30)]);
        assert_eq!(total_bytes(&[r(10, 20), r(15, 30)]), 20);
    }

    #[test]
    fn intersection_counts_overlap_only() {
        assert_eq!(intersection_bytes(&[r(0, 10)], &[r(5, 15)]), 5);
        assert_eq!(intersection_bytes(&[r(0, 10)], &[r(10, 20)]), 0);
        assert_eq!(intersection_bytes(&[r(0, 10), r(20, 30)], &[r(5, 25)]), 10);
    }

    #[test]
    fn sanitize_makes_names_path_safe() {
        assert_eq!(sanitize_name("MTM-w/o-AMR"), "MTM-w-o-AMR");
        assert_eq!(sanitize_name("MTM:fast-first"), "MTM-fast-first");
        assert_eq!(sanitize_name("Vanilla Tiered-AutoNUMA"), "Vanilla-Tiered-AutoNUMA");
        assert_eq!(sanitize_name("GUPS"), "GUPS");
    }

    #[test]
    fn emit_telemetry_writes_parseable_json() {
        let mut t = obs::RunTelemetry::default();
        t.manager = "MTM-w/o-OC".into();
        t.workload = "GUPS".into();
        t.registry.counter_add(obs::names::PROMOTIONS, 3);
        let dir = std::env::temp_dir()
            .join(format!("mtm-telemetry-test-{}-emit", std::process::id()));
        let path = emit_telemetry_into(&dir, &t).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "MTM-w-o-OC_GUPS.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let json = obs::json::parse(&text).unwrap();
        for key in obs::snapshot::REQUIRED_KEYS {
            assert!(json.get(key).is_some(), "missing key {key:?}");
        }
        assert_eq!(
            json.get("counters").and_then(|c| c.get(obs::names::PROMOTIONS)).and_then(|v| v.as_num()),
            Some(3.0)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_telemetry_files_are_disjoint_per_tenant() {
        let dir = Path::new("results/telemetry");
        let a = tenant_telemetry_path(dir, "t00", "MTM", "GUPS");
        let b = tenant_telemetry_path(dir, "t01", "MTM", "GUPS");
        assert_ne!(a, b, "same workload, different tenants, different files");
        assert_eq!(a.file_name().unwrap().to_str().unwrap(), "t00_MTM_GUPS.json");
        // The legacy two-part name never collides with a tenant name.
        let legacy = telemetry_path(dir, "MTM", "GUPS");
        assert_ne!(a, legacy);
    }

    #[test]
    fn merge_registries_sums_counters() {
        let mut a = obs::RunTelemetry::default();
        a.registry.counter_add(obs::names::PROMOTIONS, 2);
        a.registry.gauge_set(obs::names::REGION_COUNT, 5.0);
        let mut b = obs::RunTelemetry::default();
        b.registry.counter_add(obs::names::PROMOTIONS, 3);
        b.registry.gauge_set(obs::names::REGION_COUNT, 9.0);
        let merged = merge_registries([&a, &b]);
        assert_eq!(merged.counter(obs::names::PROMOTIONS), 5);
        assert_eq!(merged.gauge(obs::names::REGION_COUNT), Some(9.0));
    }

    #[test]
    fn quality_perfect_and_partial() {
        let truth = vec![r(0, 100)];
        let q = quality(&[r(0, 100)], &truth);
        assert_eq!(q, Quality { recall: 1.0, accuracy: 1.0 });
        let q = quality(&[r(0, 50), r(100, 150)], &truth);
        assert!((q.recall - 0.5).abs() < 1e-9);
        assert!((q.accuracy - 0.5).abs() < 1e-9);
        let q = quality(&[], &truth);
        assert_eq!(q, Quality { recall: 0.0, accuracy: 0.0 });
    }
}
