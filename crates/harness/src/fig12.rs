//! Fig. 12: MTM vs HeMem on a two-tiered machine (one socket: DRAM + PM),
//! GUPS throughput as the working set grows past the fast tier, at 16 and
//! 24 threads.

use mtm::MtmManager;
use mtm_baselines::{hemem_pebs_config, HeMem};
use mtm_workloads::{Gups, GupsConfig};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, MemoryManager};
use tiersim::tier::two_tier;

use crate::opts::Opts;
use crate::runs::mtm_config;
use crate::tablefmt::{f, TextTable};

/// Working-set sizes as fractions of fast-memory capacity.
pub const RATIOS: [f64; 5] = [0.5, 0.75, 1.0, 1.25, 1.5];

fn run_one(opts: &Opts, manager: &str, threads: usize, ratio: f64) -> f64 {
    let topo = two_tier(opts.scale);
    let fast = topo.components[0].capacity;
    let mut mc = MachineConfig::new(topo.clone(), threads);
    mc.interval_ns = opts.interval_ns;
    if manager == "hemem" {
        mc.pebs = hemem_pebs_config(&topo);
    }
    let mut machine = Machine::new(mc);
    let mut gcfg = GupsConfig::paper(opts.scale, threads);
    gcfg.table_bytes = ((fast as f64 * ratio) as u64).max(16 << 20) & !((2 << 20) - 1);
    gcfg.rotate_every = None;
    // Sec. 9.6 runs GUPS at full speed: the stress is aggregate NVM
    // (write) bandwidth under thread scaling plus hot-set tracking.
    gcfg.cpu_ns_per_op = 150.0;
    let mut wl = Gups::new(gcfg);
    let mut mgr: Box<dyn MemoryManager> = match manager {
        "MTM" => Box::new(MtmManager::new(mtm_config(opts), 1)),
        "hemem" => Box::new(HeMem::new(opts.promote_budget())),
        other => panic!("unknown manager {other:?}"),
    };
    let r = run_scenario(&mut machine, mgr.as_mut(), &mut wl, opts.intervals);
    // Giga-updates per second (scaled measure: updates/s / 1e9).
    r.ops_per_second_steady() / 1e9
}

/// Renders Fig. 12.
pub fn run(opts: &Opts) -> String {
    let mut table = TextTable::new(&[
        "working set / fast mem",
        "HeMem 16t",
        "HeMem 24t",
        "MTM 16t",
        "MTM 24t",
    ]);
    let mut hemem24_drop = (0.0f64, 0.0f64);
    let mut mtm24_drop = (0.0f64, 0.0f64);
    // 4 configurations × 5 ratios, all independent: run on the pool.
    let mut jobs = Vec::new();
    for &ratio in &RATIOS {
        for (mgr, threads) in [("hemem", 16), ("hemem", 24), ("MTM", 16), ("MTM", 24)] {
            jobs.push((mgr, threads, ratio));
        }
    }
    let gups = crate::runpool::map_parallel(jobs, |(mgr, threads, ratio)| {
        run_one(opts, mgr, threads, ratio)
    });
    for (i, &ratio) in RATIOS.iter().enumerate() {
        let [h16, h24, m16, m24] = [gups[i * 4], gups[i * 4 + 1], gups[i * 4 + 2], gups[i * 4 + 3]];
        if (ratio - 0.5).abs() < 1e-9 {
            hemem24_drop.0 = h24;
            mtm24_drop.0 = m24;
        }
        if (ratio - 1.5).abs() < 1e-9 {
            hemem24_drop.1 = h24;
            mtm24_drop.1 = m24;
        }
        table.row(vec![format!("{ratio:.2}"), f(h16), f(h24), f(m16), f(m24)]);
    }
    format!(
        "Fig. 12 — GUPS on two-tiered HM (giga-updates/s, simulated scale; higher is better)\n\n{}\nHeMem 24t retains {:.0}% of its in-DRAM throughput at ratio 1.5; MTM retains {:.0}%\n(paper: HeMem fails to sustain 24-thread performance once the working set exceeds fast memory; MTM sustains it)\n",
        table.render(),
        100.0 * hemem24_drop.1 / hemem24_drop.0.max(1e-12),
        100.0 * mtm24_drop.1 / mtm24_drop.0.max(1e-12),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_runs_fast() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 4;
        let g = run_one(&o, "MTM", 4, 0.5);
        assert!(g > 0.0);
    }
}
