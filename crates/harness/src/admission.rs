//! Admission-control sweep: wasted migration traffic vs end-to-end
//! slowdown for every admission policy, with and without Nomad-style
//! shadow copies, across the resilience fault levels.
//!
//! Each cell runs MTM (the only manager with an admission plane) on one
//! workload with the policy and shadow mode set programmatically — the
//! sweep deliberately bypasses both the `MTM_ADMIT`/`MTM_SHADOW`
//! environment plumbing (the policies are the experiment) and the run
//! cache (fault plans and admission settings are not part of its key).
//! Like the resilience sweep, every cell draws its fault schedule from a
//! label-derived stream, so the table is byte-identical for any
//! `MTM_JOBS` value.

use mtm::{AdmissionKind, MtmConfig, MtmManager};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, RunReport, Workload};
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::resilience::{level_spec, LEVELS};
use crate::tablefmt::{f, TextTable};

/// The four built-in policies, legacy default first (it is the slowdown
/// baseline).
pub const POLICIES: [AdmissionKind; 4] = [
    AdmissionKind::Always,
    AdmissionKind::PingPong,
    AdmissionKind::RateLimit,
    AdmissionKind::HotnessDelta,
];

/// The workloads the sweep stresses: GUPS (uniformly hot,
/// migration-heavy) and BFS (skewed, bursty frontier).
pub const SWEEP_WORKLOADS: [&str; 2] = ["GUPS", "BFS"];

/// Shadow-copy mode off and on.
pub const SHADOWS: [bool; 2] = [false, true];

/// Runs one sweep cell. Public so tests and the verify smoke can replay a
/// single cell and compare against the table.
pub fn run_cell(
    workload: &str,
    policy: AdmissionKind,
    shadow: bool,
    level: &str,
    opts: &Opts,
    base_seed: u64,
) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut mc = MachineConfig::new(topo.clone(), opts.threads);
    mc.interval_ns = opts.interval_ns;
    let mut machine = Machine::new(mc);
    if let Some(spec) = level_spec(level, opts.intervals) {
        let plan = faultsim::FaultPlan::parse(&spec).expect("built-in level specs parse");
        // The label deliberately excludes the policy and shadow mode:
        // every cell of a workload/level pair replays the SAME fault
        // trace, so column differences come from admission decisions
        // alone, never from different fault dice.
        let label = format!("adm/{workload}/{level}");
        machine.install_faults(plan, faultsim::derive_seed(base_seed, &label));
    }
    let mut cfg = MtmConfig::default();
    cfg.promote_bytes = opts.promote_budget();
    cfg.admission = policy;
    cfg.shadow = shadow;
    let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
    let mut wl: Box<dyn Workload> =
        mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
            .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    run_scenario(&mut machine, &mut mgr, wl.as_mut(), opts.intervals)
}

/// Renders the admission sweep table.
pub fn run(opts: &Opts) -> String {
    let (base_seed, seed_warning) = faultsim::plan::seed_from_env();
    if let Some(w) = seed_warning {
        eprintln!("warning: {w}");
    }
    // Cell order (and thus table order): workload, policy, shadow, level.
    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for wi in 0..SWEEP_WORKLOADS.len() {
        for pi in 0..POLICIES.len() {
            for si in 0..SHADOWS.len() {
                for li in 0..LEVELS.len() {
                    cells.push((wi, pi, si, li));
                }
            }
        }
    }
    let reports = crate::runpool::map_parallel(cells.clone(), |(wi, pi, si, li)| {
        run_cell(SWEEP_WORKLOADS[wi], POLICIES[pi], SHADOWS[si], LEVELS[li], opts, base_seed)
    });
    let report = |wi: usize, pi: usize, si: usize, li: usize| -> &RunReport {
        let idx = ((wi * POLICIES.len() + pi) * SHADOWS.len() + si) * LEVELS.len() + li;
        &reports[idx]
    };

    let mut t = TextTable::new(&[
        "workload", "policy", "shadow", "faults", "ns/op", "slowdown", "wasted-MB", "rejected",
        "rej-MB", "shadow-hits", "saved-MB", "invalidated",
    ]);
    for &(wi, pi, si, li) in &cells {
        let r = report(wi, pi, si, li);
        let reg = &r.telemetry.registry;
        // The baseline every cell is judged against: the legacy pipeline
        // (always, shadow off) on the same workload, healthy.
        let base = report(wi, 0, 0, 0);
        let slowdown = if base.ns_per_op().is_finite() && base.ns_per_op() > 0.0 {
            format!("{}x", f(r.ns_per_op() / base.ns_per_op()))
        } else {
            "n/a".to_string()
        };
        let mb = |c: &str| f(reg.counter(c) as f64 / 1.0e6);
        t.row(vec![
            SWEEP_WORKLOADS[wi].to_string(),
            POLICIES[pi].label().to_string(),
            if SHADOWS[si] { "on" } else { "off" }.to_string(),
            LEVELS[li].to_string(),
            f(r.ns_per_op()),
            slowdown,
            mb(obs::names::WASTED_MIGRATION_BYTES),
            reg.counter(obs::names::ADMIT_REJECTED).to_string(),
            mb(obs::names::ADMIT_REJECTED_BYTES),
            reg.counter(obs::names::SHADOW_HITS).to_string(),
            mb(obs::names::SHADOW_HIT_BYTES),
            reg.counter(obs::names::SHADOW_INVALIDATIONS).to_string(),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Admission control and shadow copies (MTM, {} intervals, seed {base_seed})\n\n",
        opts.intervals
    ));
    out.push_str(&t.render());
    out.push('\n');
    for &level in &LEVELS[1..] {
        let spec = level_spec(level, opts.intervals).expect("non-healthy levels have a spec");
        out.push_str(&format!("{level:<7} = MTM_FAULTS=\"{spec}\"\n"));
    }
    out.push_str(
        "\nslowdown     vs the same workload's always/shadow-off healthy run (ns/op ratio)\n\
         wasted-MB    bytes migrated into ranges that had just migrated (ping-pong traffic)\n\
         rejected     candidate batches vetoed by the admission policy (rej-MB: their bytes)\n\
         shadow-hits  repromotions served from a clean retained copy (saved-MB: copy bytes avoided)\n\
         invalidated  retained copies discarded because the demoted page was written\n",
    );
    out
}
