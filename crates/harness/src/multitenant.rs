//! Multi-tenant sweep: N co-scheduled tenants under global arbitration.
//!
//! Each tenant is a full address space — its own page table, workload
//! (round-robin over [`MT_WORKLOADS`], seeded per tenant), fault stream and
//! recorder — holding a *quota* of every physical component. The cell
//! driver steps all tenants in lock-step, one profiling interval at a
//! time, and between intervals a global [`ArbiterPolicy`] re-splits the
//! fast-tier capacity, the migration bandwidth and the Eq. 1 profiling
//! budget from observed demand (the HM-Keeper direction; see DESIGN.md
//! §5g).
//!
//! The sweep reports per-tenant QoS against a *solo* reference — the
//! same tenant, same seed, same fault stream, alone on the whole machine
//! — so slowdowns measure contention and arbitration, never workload
//! noise. Like the resilience and admission sweeps, every cell draws
//! label-derived fault streams and runs lock-step serial inside the
//! cell, so the table is byte-identical for any `MTM_JOBS` /
//! `MTM_RUN_WORKERS` setting.

use std::collections::BTreeMap;

use mtm::arbiter::{ArbiterKind, TenantDemand};
use mtm::MtmManager;
use tiersim::sim::{MemoryManager, RunReport, ScenarioProgress, Workload};
use tiersim::tenant::{jain_index, split_capacity, TenantId};
use tiersim::tier::{optane_four_tier, Topology};
use tiersim::Machine;

use crate::opts::Opts;
use crate::resilience::level_spec;
use crate::runs::healthy_machine_for;
use crate::tablefmt::{f, TextTable};

/// Tenant counts the sweep covers (overridable to one count via
/// `MTM_TENANTS`).
pub const TENANT_COUNTS: [usize; 3] = [2, 8, 32];

/// The three built-in arbiters (overridable to one via `MTM_ARBITER`).
pub const ARBITERS: [ArbiterKind; 3] =
    [ArbiterKind::StaticEqual, ArbiterKind::FootprintProportional, ArbiterKind::HotnessWeighted];

/// Fault levels the sweep crosses with the tenant/arbiter axes: the
/// resilience sweep's healthy reference and its severest level.
pub const MT_LEVELS: [&str; 2] = ["healthy", "heavy"];

/// The manager the sweep runs (the only one with an arbitration-aware
/// profiling/migration plane). The cell driver itself is
/// manager-agnostic — the N=1 differential tests drive every manager
/// through it.
pub const MT_MANAGER: &str = "MTM";

/// The workloads tenants round-robin over: the full Table 2 set. Every
/// entry keeps its footprint proportional to `1/scale` — VoltDB pins at
/// its 2-warehouse floor past `scale > 2500` but thins its per-warehouse
/// table densities to compensate (`TpccConfig::paper`) — so an
/// `n`-tenant cell's aggregate footprint matches a solo run's.
pub const MT_WORKLOADS: [&str; 6] = ["GUPS", "VoltDB", "Cassandra", "BFS", "SSSP", "Spark"];

/// Base seed tenant workload salts are derived from (per tenant *name*,
/// so a tenant's access stream is stable across cell shapes).
const TENANT_SALT_BASE: u64 = 0x7E60_A917;

/// One tenant of a cell: a stable name, a Table 2 workload, and the seed
/// salt that makes its access stream unique.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Stable tenant name (`t00`, `t01`, ...): telemetry file prefix and
    /// fault-stream label component.
    pub name: String,
    /// Workload name (round-robin over [`MT_WORKLOADS`]).
    pub workload: &'static str,
    /// Seed salt XORed into the workload's access-stream seed. Tenant 0
    /// keeps salt 0, so a 1-tenant cell replays the legacy single-tenant
    /// run bit-for-bit.
    pub salt: u64,
}

/// The tenant roster of an `n`-tenant cell.
pub fn tenant_specs(n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let name = format!("t{i:02}");
            let salt =
                if i == 0 { 0 } else { faultsim::derive_seed(TENANT_SALT_BASE, &name) };
            TenantSpec { name, workload: MT_WORKLOADS[i % MT_WORKLOADS.len()], salt }
        })
        .collect()
}

/// Builds the manager instance serving one tenant. `MTM` gets the tenant
/// id stamped into its config (so migration candidates carry it);
/// baselines are tenant-blind and build through the ordinary factory.
pub fn build_tenant_manager(
    name: &str,
    tenant: TenantId,
    opts: &Opts,
    topo: &Topology,
) -> Box<dyn MemoryManager> {
    if name == "MTM" {
        let mut cfg = crate::runs::mtm_config(opts);
        cfg.tenant = tenant;
        return Box::new(MtmManager::new(cfg, topo.nodes as usize));
    }
    crate::runs::build_manager(name, opts, topo)
}

/// One tenant's in-flight run state inside a cell.
struct TenantRun {
    machine: Machine,
    manager: Box<dyn MemoryManager>,
    workload: Box<dyn Workload>,
    progress: Option<ScenarioProgress>,
    /// Cumulative accesses at the previous arbitration point.
    prev_accesses: u64,
}

impl TenantRun {
    fn accesses_delta(&mut self) -> u64 {
        let total: u64 = self.machine.counters().all().iter().map(|c| c.total()).sum();
        let delta = total.saturating_sub(self.prev_accesses);
        self.prev_accesses = total;
        delta
    }
}

/// Re-splits every physical component and the promotion-budget pool
/// across the tenants from the arbiter's weights, then installs the
/// grants. Floors keep every tenant's current residency inside its new
/// quota, so arbitration can deny future allocations but never strands a
/// live frame. With one tenant every step is an exact identity (full
/// quota, full budget, profile share 1.0).
fn arbitrate(
    policy: &mut dyn mtm::ArbiterPolicy,
    runs: &mut [TenantRun],
    topo: &Topology,
    promote_pool: u64,
    checked: bool,
) {
    let dram: Vec<u16> = topo.dram_components();
    let demands: Vec<TenantDemand> = runs
        .iter_mut()
        .enumerate()
        .map(|(i, r)| TenantDemand {
            tenant: i as TenantId,
            // Before setup the VMAs are empty and `footprint()` is zero;
            // the declared footprint keeps the *initial* grant
            // demand-aware (after setup the two agree, so `max` is the
            // identity for every later round).
            footprint: r.workload.footprint().max(r.workload.declared_footprint()),
            fast_resident: dram.iter().map(|&c| r.machine.allocator(c).used()).sum(),
            accesses: r.accesses_delta(),
        })
        .collect();
    // Footprint floors keep a skewed arbiter from starving a tenant
    // below its working set (a fatal placement failure); when no floor
    // binds — always at N=1 — the policy's weights pass through
    // untouched.
    let total_capacity: u64 = (0..topo.num_components())
        .map(|c| topo.components[c].capacity & !(tiersim::PAGE_SIZE_2M - 1))
        .sum();
    let weights =
        mtm::arbiter::floor_shares(&policy.weights(&demands), &demands, total_capacity);
    let shares = mtm::arbiter::shares(&weights, promote_pool);
    for c in 0..topo.num_components() as u16 {
        let capacity = topo.components[c as usize].capacity & !(tiersim::PAGE_SIZE_2M - 1);
        let floors: Vec<u64> = runs.iter().map(|r| r.machine.allocator(c).used()).collect();
        let quotas = split_capacity(capacity, &weights, &floors);
        for (r, &q) in runs.iter_mut().zip(&quotas) {
            r.machine.set_component_quota(c, q);
        }
        if checked {
            let used: Vec<u64> = runs.iter().map(|r| r.machine.allocator(c).used()).collect();
            mtm_check::assert_clean(
                "multi-tenant arbitration",
                mtm_check::check_quota_partition(c, &quotas, &used, capacity),
            );
        }
    }
    for (r, s) in runs.iter_mut().zip(&shares) {
        r.manager.set_share(*s);
    }
}

/// Verifies the machine-wide capacity partition and each tenant's census
/// after an interval round: per component, the per-tenant quotas sum to
/// the physical capacity and nobody exceeds their grant.
fn verify_partition(runs: &[TenantRun], topo: &Topology, context: &str) {
    for c in 0..topo.num_components() as u16 {
        let capacity = topo.components[c as usize].capacity & !(tiersim::PAGE_SIZE_2M - 1);
        let quotas: Vec<u64> = runs.iter().map(|r| r.machine.allocator(c).capacity()).collect();
        let used: Vec<u64> = runs.iter().map(|r| r.machine.allocator(c).used()).collect();
        mtm_check::assert_clean(
            context,
            mtm_check::check_quota_partition(c, &quotas, &used, capacity),
        );
    }
}

/// Runs one multi-tenant cell: `specs` tenants in lock-step under
/// `manager`, with `arbiter` re-splitting resources between intervals.
/// Returns one report per tenant, in tenant order.
///
/// `workload_scale` is explicit (the sweep uses `opts.scale * n` so each
/// tenant holds ~1/n of the aggregate footprint) so a *solo* reference —
/// one tenant, whole machine — runs the **same** workload through the
/// same code path. `run_workers` overrides the packet-engine worker
/// count (`None` keeps the `MTM_RUN_WORKERS` default); `checked` arms
/// the shadow-state sanitizer and the quota-partition census regardless
/// of `MTM_CHECK`.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    manager: &str,
    specs: &[TenantSpec],
    workload_scale: u64,
    arbiter: ArbiterKind,
    level: &str,
    opts: &Opts,
    base_seed: u64,
    run_workers: Option<usize>,
    checked: bool,
) -> Vec<RunReport> {
    let topo = optane_four_tier(opts.scale);
    let fault_plan = level_spec(level, opts.intervals)
        .map(|spec| faultsim::FaultPlan::parse(&spec).expect("built-in level specs parse"));
    let mut runs: Vec<TenantRun> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut machine = healthy_machine_for(manager, opts, topo.clone());
            if let Some(plan) = &fault_plan {
                // The label binds the stream to the tenant *and* its
                // workload, never to the arbiter or the cell shape: two
                // tenants sharing a workload name still draw distinct
                // faults, and a tenant's stream survives axis filtering.
                let label = format!("mt/{level}/{}/{}", spec.name, spec.workload);
                machine.install_faults(plan.clone(), faultsim::derive_seed(base_seed, &label));
            }
            if let Some(w) = run_workers {
                machine.set_run_workers(w);
            }
            if checked {
                machine.set_checking(true);
            }
            let manager = build_tenant_manager(manager, i as TenantId, opts, &topo);
            let workload = mtm_workloads::build_paper_workload_seeded(
                spec.workload,
                workload_scale,
                opts.threads,
                spec.salt,
            )
            .unwrap_or_else(|| panic!("unknown workload {:?}", spec.workload));
            TenantRun { machine, manager, workload, progress: None, prev_accesses: 0 }
        })
        .collect();

    let sanitize = checked || mtm_check::enabled();
    let mut policy = arbiter.build();
    // Initial grant, before any VMA exists: demand is the declared
    // footprint, so setup-time placement already honors the quotas.
    arbitrate(policy.as_mut(), &mut runs, &topo, opts.promote_budget(), sanitize);
    for r in &mut runs {
        r.progress =
            Some(ScenarioProgress::start(&mut r.machine, r.manager.as_mut(), r.workload.as_mut()));
    }
    for ivl in 0..opts.intervals {
        for r in &mut runs {
            let mut progress = r.progress.take().expect("progress live during the run");
            progress.step_interval(&mut r.machine, r.manager.as_mut(), r.workload.as_mut(), ivl);
            r.progress = Some(progress);
        }
        if sanitize {
            verify_partition(&runs, &topo, "multi-tenant interval boundary");
        }
        if ivl + 1 < opts.intervals {
            arbitrate(policy.as_mut(), &mut runs, &topo, opts.promote_budget(), sanitize);
        }
    }
    runs.into_iter()
        .map(|mut r| {
            if checked {
                r.machine.verify_consistency("end of run");
            }
            let progress = r.progress.take().expect("progress live at finish");
            progress.finish(&mut r.machine, r.manager.as_mut(), r.workload.as_mut())
        })
        .collect()
}

/// Per-interval virtual nanoseconds per completed operation, the series
/// the p99 slowdown is computed over (also the scenario sweep's
/// transient-latency series).
pub(crate) fn interval_ns_per_op(r: &RunReport) -> Vec<f64> {
    let mut out = Vec::with_capacity(r.interval_ns.len());
    let mut prev = 0u64;
    for (i, &wall) in r.interval_ns.iter().enumerate() {
        let ops = r.ops_trace.get(i).copied().unwrap_or(prev);
        let delta = ops.saturating_sub(prev);
        prev = ops;
        out.push(if delta > 0 { wall / delta as f64 } else { f64::INFINITY });
    }
    out
}

/// Nearest-rank p99 of the finite entries; infinity when none are.
pub(crate) fn p99(mut xs: Vec<f64>) -> f64 {
    xs.retain(|x| x.is_finite());
    if xs.is_empty() {
        return f64::INFINITY;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite entries compare"));
    let rank = ((0.99 * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
    xs[rank - 1]
}

/// Per-interval slowdown of `shared` against `solo` (elementwise ns/op
/// ratio), at the p99 nearest rank.
fn p99_slowdown(shared: &RunReport, solo: &RunReport) -> f64 {
    let s = interval_ns_per_op(shared);
    let b = interval_ns_per_op(solo);
    p99(s.iter().zip(&b).map(|(&a, &c)| a / c).collect())
}

/// Fraction of the machine's fast-tier (DRAM) bytes this tenant holds.
fn fast_share(r: &RunReport, topo: &Topology) -> f64 {
    let dram = topo.dram_components();
    let cap: u64 = dram.iter().map(|&c| topo.components[c as usize].capacity).sum();
    let held: u64 = dram.iter().map(|&c| r.residency[c as usize]).sum();
    if cap == 0 {
        return 0.0;
    }
    held as f64 / cap as f64
}

/// The tenant counts and arbiters this invocation sweeps, from
/// `MTM_TENANTS` / `MTM_ARBITER`. Unset (or empty) keeps the full axes;
/// malformed values print a `warning:` line and keep the full axes
/// rather than silently running something else.
pub fn env_axes() -> (Vec<usize>, Vec<ArbiterKind>) {
    let counts = match std::env::var("MTM_TENANTS") {
        Ok(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n >= 1 => vec![n],
            _ => {
                eprintln!(
                    "warning: ignoring MTM_TENANTS={s:?} (expected a tenant count >= 1)"
                );
                TENANT_COUNTS.to_vec()
            }
        },
        _ => TENANT_COUNTS.to_vec(),
    };
    let arbiters = match std::env::var("MTM_ARBITER") {
        Ok(s) if !s.is_empty() => match ArbiterKind::parse(&s) {
            Some(k) => vec![k],
            None => {
                eprintln!(
                    "warning: MTM_ARBITER={s:?} is not an arbiter \
                     (static-equal|footprint-proportional|hotness-weighted); sweeping all"
                );
                ARBITERS.to_vec()
            }
        },
        _ => ARBITERS.to_vec(),
    };
    (counts, arbiters)
}

/// True when both sweep axes are unrestricted (the full-table shape the
/// committed `results/multitenant.txt` is generated with).
pub fn axes_unrestricted() -> bool {
    std::env::var("MTM_TENANTS").map_or(true, |s| s.is_empty())
        && std::env::var("MTM_ARBITER").map_or(true, |s| s.is_empty())
}

/// Renders the multi-tenant sweep over explicit axes (the env-driven
/// entry point is [`run`]).
pub fn render(opts: &Opts, counts: &[usize], arbiters: &[ArbiterKind]) -> String {
    let (base_seed, seed_warning) = faultsim::plan::seed_from_env();
    if let Some(w) = seed_warning {
        eprintln!("warning: {w}");
    }
    let topo = optane_four_tier(opts.scale);

    // Solo references: each tenant alone on the whole machine, same
    // workload scale, same fault stream — keyed by (count, tenant,
    // level) because the workload scale tracks the cell's tenant count.
    let mut solo_keys: Vec<(usize, usize, usize)> = Vec::new();
    for &n in counts {
        for i in 0..n {
            for li in 0..MT_LEVELS.len() {
                solo_keys.push((n, i, li));
            }
        }
    }
    let solo_reports = crate::runpool::map_parallel(solo_keys.clone(), |(n, i, li)| {
        let spec = tenant_specs(n).swap_remove(i);
        run_cell(
            MT_MANAGER,
            &[spec],
            opts.scale * n as u64,
            ArbiterKind::StaticEqual,
            MT_LEVELS[li],
            opts,
            base_seed,
            None,
            false,
        )
        .pop()
        .expect("one tenant, one report")
    });
    let solo: BTreeMap<(usize, usize, usize), &RunReport> =
        solo_keys.iter().copied().zip(solo_reports.iter()).collect();

    // Shared cells: tenants × arbiters × fault levels.
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for ni in 0..counts.len() {
        for ai in 0..arbiters.len() {
            for li in 0..MT_LEVELS.len() {
                cells.push((ni, ai, li));
            }
        }
    }
    let cell_reports = crate::runpool::map_parallel(cells.clone(), |(ni, ai, li)| {
        run_cell(
            MT_MANAGER,
            &tenant_specs(counts[ni]),
            opts.scale * counts[ni] as u64,
            arbiters[ai],
            MT_LEVELS[li],
            opts,
            base_seed,
            None,
            false,
        )
    });

    // Per-tenant telemetry export, serial and in cell order so the final
    // file set is deterministic for any worker count.
    if crate::metrics::telemetry_enabled() {
        let dir = std::path::Path::new(crate::metrics::TELEMETRY_DIR);
        for (ci, &(ni, _, _)) in cells.iter().enumerate() {
            let specs = tenant_specs(counts[ni]);
            for (spec, report) in specs.iter().zip(&cell_reports[ci]) {
                if let Err(e) =
                    crate::metrics::emit_tenant_telemetry_into(dir, &spec.name, &report.telemetry)
                {
                    eprintln!(
                        "warning: could not write telemetry for {}/{}: {e}",
                        spec.name, spec.workload
                    );
                }
            }
        }
    }

    let mut summary = TextTable::new(&[
        "tenants", "arbiter", "faults", "jain", "mean-slow", "worst-p99", "fshare-min",
        "fshare-max",
    ]);
    let mut detail = TextTable::new(&[
        "tenants", "arbiter", "faults", "tenant", "workload", "ns/op", "slowdown", "p99-slow",
        "fast-share",
    ]);
    for (ci, &(ni, ai, li)) in cells.iter().enumerate() {
        let n = counts[ni];
        let specs = tenant_specs(n);
        let reports = &cell_reports[ci];
        let mut perf = Vec::with_capacity(n);
        let mut slowdowns = Vec::with_capacity(n);
        let mut p99s = Vec::with_capacity(n);
        let mut shares = Vec::with_capacity(n);
        for (i, r) in reports.iter().enumerate() {
            let base = solo[&(n, i, li)];
            let slowdown = r.ns_per_op() / base.ns_per_op();
            perf.push(base.ns_per_op() / r.ns_per_op());
            slowdowns.push(slowdown);
            p99s.push(p99_slowdown(r, base));
            shares.push(fast_share(r, &topo));
            detail.row(vec![
                n.to_string(),
                arbiters[ai].label().to_string(),
                MT_LEVELS[li].to_string(),
                specs[i].name.clone(),
                specs[i].workload.to_string(),
                f(r.ns_per_op()),
                format!("{}x", f(slowdown)),
                format!("{}x", f(p99s[i])),
                f(shares[i]),
            ]);
        }
        let mean_slow = slowdowns.iter().sum::<f64>() / n as f64;
        let worst_p99 = p99s.iter().copied().fold(0.0_f64, f64::max);
        let fmin = shares.iter().copied().fold(f64::INFINITY, f64::min);
        let fmax = shares.iter().copied().fold(0.0_f64, f64::max);
        summary.row(vec![
            n.to_string(),
            arbiters[ai].label().to_string(),
            MT_LEVELS[li].to_string(),
            f(jain_index(&perf)),
            format!("{}x", f(mean_slow)),
            format!("{}x", f(worst_p99)),
            f(fmin),
            f(fmax),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Multi-tenant arbitration ({MT_MANAGER}, {} intervals, seed {base_seed})\n\n",
        opts.intervals
    ));
    out.push_str(&summary.render());
    out.push('\n');
    out.push_str(&detail.render());
    out.push('\n');
    for &level in &MT_LEVELS[1..] {
        let spec = level_spec(level, opts.intervals).expect("non-healthy levels have a spec");
        out.push_str(&format!("{level:<7} = MTM_FAULTS=\"{spec}\"\n"));
    }
    out.push_str(
        "\nslowdown    ns/op vs the same tenant alone on the whole machine (same seed and faults)\n\
         p99-slow    99th-percentile (nearest-rank) of the per-interval ns/op ratio vs solo\n\
         jain        Jain fairness index (sum x)^2 / (n * sum x^2) over solo-normalized speeds x\n\
         fast-share  fraction of machine DRAM bytes the tenant holds at the end of the run\n",
    );
    out
}

/// Renders the sweep with the env-selected axes (`MTM_TENANTS`,
/// `MTM_ARBITER`).
pub fn run(opts: &Opts) -> String {
    let (counts, arbiters) = env_axes();
    render(opts, &counts, &arbiters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_roster_is_stable_and_salted() {
        let specs = tenant_specs(8);
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].name, "t00");
        assert_eq!(specs[0].salt, 0, "tenant 0 replays the legacy stream");
        assert_eq!(specs[0].workload, "GUPS");
        assert_eq!(specs[1].workload, "VoltDB", "the full Table 2 set rotates");
        assert_eq!(specs[6].workload, "GUPS", "round-robin wraps after six");
        // Same workload name, distinct streams.
        assert_ne!(specs[6].salt, specs[0].salt);
        let again = tenant_specs(8);
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.salt, b.salt, "roster is a pure function of the index");
        }
    }

    #[test]
    fn p99_is_nearest_rank_over_finite_entries() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p99(xs), 99.0);
        assert_eq!(p99(vec![f64::INFINITY, 2.0]), 2.0);
        assert_eq!(p99(vec![]), f64::INFINITY);
        assert_eq!(p99(vec![f64::INFINITY]), f64::INFINITY);
    }

    #[test]
    fn interval_series_uses_ops_deltas() {
        let mut r = quick_report();
        r.interval_ns = vec![100.0, 100.0];
        r.ops_trace = vec![10, 30];
        let s = interval_ns_per_op(&r);
        assert_eq!(s, vec![10.0, 5.0]);
    }

    fn quick_report() -> RunReport {
        let mut opts = Opts::quick();
        opts.scale = 1 << 14;
        opts.threads = 2;
        opts.intervals = 1;
        let specs = tenant_specs(1);
        run_cell(
            "first-touch",
            &specs,
            opts.scale,
            ArbiterKind::StaticEqual,
            "healthy",
            &opts,
            0,
            None,
            false,
        )
        .pop()
        .unwrap()
    }
}
