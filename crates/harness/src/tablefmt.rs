//! Plain-text table rendering for experiment reports.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with limited precision for reports.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a virtual-nanosecond duration in the most readable unit.
pub fn dur(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "z".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",z\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only".into()]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(dur(1.5e9), "1.50s");
        assert_eq!(dur(2.5e6), "2.50ms");
        assert_eq!(dur(3.0e3), "3.00us");
        assert_eq!(dur(42.0), "42ns");
    }
}
