//! Fig. 10: sensitivity to the EMA weight alpha (Eq. 2), all six
//! workloads, normalized to the default alpha = 1/2.

use mtm::MtmManager;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::run_scenario;
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::runs::{mtm_config, WORKLOADS};
use crate::tablefmt::{f, TextTable};

/// The alpha sweep of the paper.
pub const ALPHAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn run_one(opts: &Opts, workload: &str, alpha: f64) -> f64 {
    let topo = optane_four_tier(opts.scale);
    let mut mc = MachineConfig::new(topo.clone(), opts.threads);
    mc.interval_ns = opts.interval_ns;
    let mut machine = Machine::new(mc);
    let mut cfg = mtm_config(opts);
    cfg.alpha = alpha;
    let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
    let mut wl = mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
        .expect("known workload");
    run_scenario(&mut machine, &mut mgr, wl.as_mut(), opts.intervals).ns_per_op_steady()
}

/// Renders Fig. 10 (speedup over alpha = 1/2; higher is better).
pub fn run(opts: &Opts) -> String {
    let mut headers = vec!["workload".to_string()];
    headers.extend(ALPHAS.iter().map(|a| format!("alpha={a}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    // The full workload × alpha sweep is independent runs; fan it out on
    // the worker pool, then assemble rows (each alpha is normalized to
    // the same workload's alpha = 1/2 run, which is part of the sweep).
    let mut jobs = Vec::new();
    for wl in WORKLOADS {
        for &a in &ALPHAS {
            jobs.push((wl, a));
        }
    }
    let times = crate::runpool::map_parallel(jobs, |(wl, a)| run_one(opts, wl, a));
    for (w, wl) in WORKLOADS.iter().enumerate() {
        let at = |a: f64| {
            let i = ALPHAS.iter().position(|&x| (x - a).abs() < 1e-9).expect("alpha in sweep");
            times[w * ALPHAS.len() + i]
        };
        let base = at(0.5);
        let mut row = vec![wl.to_string()];
        for &a in &ALPHAS {
            row.push(f(base / at(a)));
        }
        table.row(row);
    }
    format!(
        "Fig. 10 — Performance when changing alpha (speedup vs alpha=1/2; >1 means faster than default)\n\n{}\n(paper: using both current and historical profiling results helps most workloads)\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sweep_single_workload() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 3;
        o.threads = 2;
        let t_default = run_one(&o, "GUPS", 0.5);
        let t_zero = run_one(&o, "GUPS", 0.0);
        assert!(t_default > 0.0 && t_zero > 0.0);
    }
}
