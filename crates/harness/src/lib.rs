//! `mtm-harness` — regenerates every table and figure of the MTM paper's
//! evaluation (Sec. 9) on the simulated machine.
//!
//! Each experiment is addressable by its paper id (`fig1`..`fig12`,
//! `table1`..`table7`) through [`run_experiment`], and has a matching
//! binary (`cargo run --release -p mtm-harness --bin fig4`). The `all`
//! binary runs everything and writes the reports under `results/`.

pub mod admission;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod metrics;
pub mod multitenant;
pub mod opts;
pub mod overall;
pub mod resilience;
pub mod runpool;
pub mod runs;
pub mod scenarios;
pub mod tablefmt;
pub mod tables;

pub use opts::Opts;

/// One experiment of the evaluation.
pub struct Experiment {
    /// Paper id (e.g. `fig4`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&Opts) -> String,
}

/// The full experiment registry, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment { id: "table1", title: "Hardware overview", run: tables::table1 },
        Experiment { id: "table2", title: "Workloads for evaluation", run: tables::table2 },
        Experiment { id: "fig1", title: "Profiling recall/accuracy over time", run: fig1::run },
        Experiment { id: "fig3", title: "Migration mechanism breakdown", run: fig3::run },
        Experiment { id: "fig4", title: "Overall performance", run: overall::fig4 },
        Experiment { id: "table3", title: "Hot pages identified / fast-tier accesses", run: overall::table3 },
        Experiment { id: "table4", title: "GUPS vs initial placement", run: tables::table4 },
        Experiment { id: "fig5", title: "Execution time breakdown", run: overall::fig5 },
        Experiment { id: "table5", title: "MTM memory overhead", run: overall::table5 },
        Experiment { id: "table6", title: "Per-tier access counts (VoltDB)", run: tables::table6 },
        Experiment { id: "table7", title: "Region formation statistics", run: overall::table7 },
        Experiment { id: "fig6", title: "GUPS heatmap, DAMON vs MTM", run: fig6::run },
        Experiment { id: "fig7", title: "Ablations (AMR/APS/OC/PEBS/async)", run: fig7::run },
        Experiment { id: "fig8", title: "Profiling overhead target sweep", run: fig8::run },
        Experiment { id: "fig9", title: "tau_m / tau_s sensitivity", run: fig9::run },
        Experiment { id: "fig10", title: "alpha sensitivity", run: fig10::run },
        Experiment { id: "fig11", title: "Migration microbenchmark", run: fig11::run },
        Experiment { id: "fig12", title: "Two-tier HM vs HeMem", run: fig12::run },
    ]
}

/// Runs one experiment by id; `None` if the id is unknown.
pub fn run_experiment(id: &str, opts: &Opts) -> Option<String> {
    experiments().into_iter().find(|e| e.id == id).map(|e| (e.run)(opts))
}

/// Runs an experiment, prints it, and writes it under `results/`.
pub fn run_and_save(id: &str) {
    let opts = Opts::from_env();
    let out = run_experiment(id, &opts)
        .unwrap_or_else(|| panic!("unknown experiment {id:?}"));
    println!("{out}");
    if let Err(e) = save_result(id, &out) {
        eprintln!("warning: could not save results/{id}.txt: {e}");
    }
}

/// Writes a report under `results/<id>.txt`.
pub fn save_result(id: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{id}.txt"), content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = experiments().iter().map(|e| e.id).collect();
        for want in
            ["fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"]
        {
            assert!(ids.contains(&want), "missing {want}");
        }
        for want in ["table1", "table2", "table3", "table4", "table5", "table6", "table7"] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", &Opts::quick()).is_none());
    }
}
