//! Fig. 3: cost breakdown of migrating one 2 MB region from the fastest
//! to the slowest tier — Linux `move_pages()` vs MTM's
//! `move_memory_regions()`.

use mtm::migration::move_memory_regions_once;
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::migrate::{move_pages_linux, StepBreakdown};
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::tablefmt::{dur, TextTable};

fn fresh_machine(opts: &Opts) -> Machine {
    let mut cfg = MachineConfig::new(optane_four_tier(opts.scale), 1);
    cfg.interval_ns = opts.interval_ns;
    let mut m = Machine::new(cfg);
    let r = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
    m.mmap("region", r, false);
    m.prefault_range(r, &[0]).unwrap();
    m
}

/// Measured breakdowns for the two mechanisms.
pub struct Fig3Data {
    /// `move_pages()` step costs (all on the critical path).
    pub move_pages: StepBreakdown,
    /// `move_memory_regions()` step costs (full work).
    pub mmr: StepBreakdown,
    /// `move_memory_regions()` critical-path cost (copy/alloc off-path).
    pub mmr_critical: f64,
}

/// Runs the microbenchmark.
pub fn measure(opts: &Opts) -> Fig3Data {
    let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
    // Tier 1 (DRAM0) -> tier 4 (PM1) from node 0's view.
    let mut m = fresh_machine(opts);
    let mp = move_pages_linux(&mut m, range, 3, 0).expect("move_pages succeeds");
    let mut m = fresh_machine(opts);
    let (mmr, critical) =
        move_memory_regions_once(&mut m, range, 3, 0, 4, false).expect("mmr succeeds");
    Fig3Data { move_pages: mp.breakdown, mmr: mmr.breakdown, mmr_critical: critical }
}

/// Renders Fig. 3.
pub fn run(opts: &Opts) -> String {
    let d = measure(opts);
    let mut table = TextTable::new(&[
        "step",
        "move_pages()",
        "move_memory_regions() (critical path)",
    ]);
    let row = |name: &str, a: f64, b: f64| vec![name.to_string(), dur(a), dur(b)];
    table.row(row("allocate new pages", d.move_pages.alloc_ns, 0.0));
    table.row(row("unmap + invalidate", d.move_pages.unmap_ns, d.mmr.unmap_ns));
    table.row(row("copy pages", d.move_pages.copy_ns, 0.0));
    table.row(row("remap new pages", d.move_pages.remap_ns, d.mmr.remap_ns));
    table.row(row("move page-table pages", d.move_pages.pt_ns, d.mmr.pt_ns));
    table.row(row("dirtiness tracking", 0.0, d.mmr.track_ns));
    let mp_total = d.move_pages.total_ns();
    table.row(row("TOTAL (critical path)", mp_total, d.mmr_critical));
    let speedup = mp_total / d.mmr_critical;
    let copy_share = d.move_pages.copy_ns / mp_total;
    format!(
        "Fig. 3 — Breakdown for migrating a 2 MB region, tier 1 -> tier 4\n\n{}\ncopy share of move_pages(): {:.0}%   move_memory_regions() critical-path speedup: {:.2}x\n(paper: copying ~40% of total; 4.37x faster excluding async copy/alloc)\n",
        table.render(),
        copy_share * 100.0,
        speedup
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmr_critical_path_is_much_cheaper() {
        let d = measure(&Opts::quick());
        assert!(d.move_pages.copy_ns > 0.0);
        let speedup = d.move_pages.total_ns() / d.mmr_critical;
        assert!(speedup > 2.0, "speedup = {speedup:.2}");
        // The copy dominates move_pages, as the paper's Fig. 3 shows.
        assert!(d.move_pages.copy_ns / d.move_pages.total_ns() > 0.25);
    }

    #[test]
    fn report_mentions_speedup() {
        let s = run(&Opts::quick());
        assert!(s.contains("speedup"));
        assert!(s.contains("move_pages()"));
    }
}
