//! Tables 1, 2, 4 and 6 of the paper.

use mtm::config::InitialPlacement;
use mtm::MtmManager;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{drive_interval, MemoryManager};
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::runs::mtm_config;
use crate::tablefmt::{f, TextTable};

/// Table 1: the simulated hardware.
pub fn table1(opts: &Opts) -> String {
    let topo = optane_four_tier(opts.scale);
    let mut table =
        TextTable::new(&["tier (node-0 view)", "component", "latency", "bandwidth", "capacity (sim)", "capacity (paper)"]);
    let names = ["Fast Mem Local Access", "Fast Mem Remote Access", "Slow Mem Local Access", "Slow Mem Remote Access"];
    for (rank, name) in names.iter().enumerate() {
        let c = topo.component_at_rank(0, rank);
        let link = topo.link(0, c);
        let comp = &topo.components[c as usize];
        table.row(vec![
            format!("{} ({})", rank + 1, name),
            comp.name.clone(),
            format!("{:.0}ns", link.latency_ns),
            format!("{:.0} GB/s", link.bandwidth_gbps),
            tiersim::addr::fmt_bytes(comp.capacity),
            opts.paper_bytes(comp.capacity),
        ]);
    }
    format!(
        "Table 1 — Hardware overview of the (simulated) Optane system, scale 1/{}\n\n{}",
        opts.scale,
        table.render()
    )
}

/// Table 2: the workload inventory.
pub fn table2(opts: &Opts) -> String {
    let mut table = TextTable::new(&["workload", "description", "mem (paper)", "mem (sim)", "R/W"]);
    for e in mtm_workloads::catalog() {
        table.row(vec![
            e.name.to_string(),
            e.description.to_string(),
            tiersim::addr::fmt_bytes(e.paper_bytes),
            tiersim::addr::fmt_bytes(e.paper_bytes / opts.scale),
            e.rw.to_string(),
        ]);
    }
    format!("Table 2 — Workloads for evaluation\n\n{}", table.render())
}

/// Table 4: GUPS progress under the two initial page placements.
///
/// Reports the virtual time at which GUPS reached each update-count
/// milestone, for MTM's slow-tier-first placement vs first-touch-style
/// fast-first placement.
pub fn table4(opts: &Opts) -> String {
    let milestones = 5;
    let run_one = |placement: InitialPlacement| -> (Vec<f64>, u64) {
        let topo = optane_four_tier(opts.scale);
        let mut mc = MachineConfig::new(topo.clone(), opts.threads);
        mc.interval_ns = opts.interval_ns;
        let mut machine = Machine::new(mc);
        let mut cfg = mtm_config(opts);
        cfg.initial_placement = placement;
        let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
        let mut wl = mtm_workloads::build_paper_workload("GUPS", opts.scale, opts.threads)
            .expect("GUPS exists");
        {
            let mut env = tiersim::sim::SimEnv { machine: &mut machine, manager: &mut mgr };
            wl.setup(&mut env);
        }
        mgr.init(&mut machine);
        machine.reset_measurement();
        // Record (ops, time) after each interval.
        let mut trace = Vec::new();
        for ivl in 0..opts.intervals {
            drive_interval(&mut machine, &mut mgr, wl.as_mut(), ivl);
            mgr.on_interval(&mut machine, ivl);
            wl.end_of_interval(ivl);
            trace.push((wl.ops_completed(), machine.elapsed_ns()));
        }
        let total_ops = trace.last().map(|&(o, _)| o).unwrap_or(0);
        // Time when ops crossed each milestone (linear interpolation).
        let mut times = Vec::new();
        for k in 1..=milestones {
            let target = total_ops * k as u64 / milestones as u64;
            let t = trace
                .iter()
                .find(|&&(ops, _)| ops >= target)
                .map(|&(_, t)| t)
                .unwrap_or(f64::NAN);
            times.push(t);
        }
        (times, total_ops)
    };
    // The two placements are independent runs; use the worker pool.
    let mut results = crate::runpool::map_parallel(
        vec![InitialPlacement::SlowLocalFirst, InitialPlacement::FastLocalFirst],
        |p| run_one(p),
    )
    .into_iter();
    let (slow_times, slow_ops) = results.next().expect("slow-first run");
    let (fast_times, _) = results.next().expect("fast-first run");
    let mut table = TextTable::new(&["updates (fraction of run)", "slow tier first", "first-touch (fast first)", "gap"]);
    for k in 0..milestones {
        let gap = (slow_times[k] - fast_times[k]) / fast_times[k].max(1.0) * 100.0;
        table.row(vec![
            format!("{}/{milestones} ({} ops)", k + 1, slow_ops * (k as u64 + 1) / milestones as u64),
            crate::tablefmt::dur(slow_times[k]),
            crate::tablefmt::dur(fast_times[k]),
            format!("{gap:+.1}%"),
        ]);
    }
    format!(
        "Table 4 — GUPS progress with different initial page placements (MTM managing both)\n\n{}\n(paper: ~4.9% difference early in the run, negligible later as MTM uses all tiers)\n",
        table.render()
    )
}

/// Table 6: per-tier application access counts for VoltDB with all
/// clients on one processor.
pub fn table6(opts: &Opts) -> String {
    const MANAGERS: [&str; 3] = ["autonuma", "autotiering", "MTM"];
    let topo = optane_four_tier(opts.scale);
    let mut table = TextTable::new(&["system", "tier 1", "tier 2", "tier 3", "tier 4"]);
    // The paper pins all eight VoltDB clients to one processor; the tier
    // view below is that processor's. The three managers run in parallel.
    let reports = crate::runpool::map_parallel(MANAGERS.to_vec(), |mgr| {
        let mut machine_cfg =
            tiersim::machine::MachineConfig::new(topo.clone(), opts.threads).pin_all_to(0);
        machine_cfg.interval_ns = opts.interval_ns;
        let mut machine = tiersim::machine::Machine::new(machine_cfg);
        let mut mgr_box = crate::runs::build_manager(mgr, opts, &topo);
        let mut wl = mtm_workloads::build_paper_workload("VoltDB", opts.scale, opts.threads)
            .expect("VoltDB exists");
        tiersim::sim::run_scenario(&mut machine, mgr_box.as_mut(), wl.as_mut(), opts.intervals)
    });
    for r in reports {
        let mut row = vec![r.manager.clone()];
        for rank in 0..4 {
            let n = r.accesses_at_rank(&topo, 0, rank);
            row.push(if n >= 1_000_000 {
                format!("{}M", f(n as f64 / 1e6))
            } else {
                format!("{}K", f(n as f64 / 1e3))
            });
        }
        table.row(row);
    }
    format!(
        "Table 6 — Application memory accesses per tier, VoltDB (node-0 view; migration traffic excluded)\n\n{}\n(paper: MTM serves 12-14% more accesses from tier 1 than tiered-AutoNUMA/AutoTiering)\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let o = Opts::quick();
        let t1 = table1(&o);
        assert!(t1.contains("90ns") && t1.contains("DRAM0"));
        let t2 = table2(&o);
        assert!(t2.contains("GUPS") && t2.contains("read-only"));
    }

    #[test]
    fn table4_reports_milestones() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 5;
        o.threads = 2;
        let s = table4(&o);
        assert!(s.contains("slow tier first"));
        assert!(s.contains("1/5"));
    }
}
