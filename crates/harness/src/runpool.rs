//! A dependency-free parallel executor for independent evaluation runs.
//!
//! The evaluation matrix is embarrassingly parallel: every `(manager,
//! workload, opts)` run owns its `Machine`, seeded RNG and manager, so
//! runs can execute on any thread in any order and still produce
//! bit-identical reports. This module provides the small worker pool the
//! harness uses to exploit that: `std::thread::scope` workers pulling
//! task indexes from a shared atomic counter, results returned in task
//! order so callers stay deterministic.
//!
//! The worker count defaults to `available_parallelism` and is overridden
//! by the `MTM_JOBS` environment variable when set; `MTM_JOBS=1` forces
//! the serial path (useful for timing comparisons and for
//! byte-identical-output checks against the parallel path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A boxed task for [`run_all`].
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Number of workers to use: `available_parallelism` by default, or
/// exactly `MTM_JOBS` when that environment variable is set (an explicit
/// job count wins even above the core count — the runs are simulation
/// work, so oversubscription is harmless and this keeps the parallel
/// code path testable on small machines). Always at least 1. An
/// unparsable `MTM_JOBS` is ignored with a `warning:` line on stderr.
pub fn jobs() -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("MTM_JOBS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring MTM_JOBS={raw:?} (expected a positive integer)");
                hw
            }
        },
        Err(_) => hw,
    }
}

/// Runs every task, using up to [`jobs`] worker threads, and returns the
/// results in task order. With one worker (or one task) the tasks run
/// inline on the calling thread, in order — the exact serial behavior.
///
/// A panicking task propagates its panic to the caller after all workers
/// have stopped picking up new tasks.
pub fn run_all<'a, T: Send>(tasks: Vec<Job<'a, T>>) -> Vec<T> {
    let n = tasks.len();
    let workers = jobs().min(n).max(1);
    if workers == 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Job<'a, T>>>> =
        tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i].lock().expect("task slot poisoned").take().expect("task taken once");
                let out = task();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// Maps `f` over `items` in parallel, preserving order.
pub fn map_parallel<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let f = &f;
    run_all(items.into_iter().map(|it| Box::new(move || f(it)) as Job<'_, T>).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_task_order() {
        let out = map_parallel((0..64).collect(), |i: u64| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = map_parallel((0..100).collect::<Vec<u32>>(), |_| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn heterogeneous_boxed_jobs_run() {
        let a = 7u64;
        let jobs: Vec<Job<'_, u64>> =
            vec![Box::new(|| 1), Box::new(move || a), Box::new(|| 40 + 2)];
        assert_eq!(run_all(jobs), vec![1, 7, 42]);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u8> = run_all(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
