//! Fig. 7: effectiveness of MTM's pieces on VoltDB — adaptive memory
//! regions (AMR), adaptive page sampling (APS), overhead control (OC),
//! PEBS assistance, async migration — next to Thermostat and patched
//! tiered-AutoNUMA.

use crate::opts::Opts;
use crate::runs::{cached_run, prewarm};
use crate::tablefmt::{dur, TextTable};

/// The systems of the ablation study (all run on VoltDB).
pub const SYSTEMS: [&str; 8] = [
    "thermostat",
    "autonuma",
    "MTM",
    "MTM:w/o-AMR",
    "MTM:w/o-PEBS",
    "MTM:w/o-APS",
    "MTM:w/o-OC",
    "MTM:w/o-async",
];

/// Renders Fig. 7.
pub fn run(opts: &Opts) -> String {
    let pairs: Vec<(&str, &str)> = SYSTEMS.iter().map(|&s| (s, "VoltDB")).collect();
    prewarm(&pairs, opts);
    let mut table =
        TextTable::new(&["system", "app", "profiling", "migration", "total", "vs MTM"]);
    let mtm_nspo = cached_run("MTM", "VoltDB", opts).ns_per_op_steady();
    for sys in SYSTEMS {
        let r = cached_run(sys, "VoltDB", opts);
        let (b, ops) = r.steady();
        let k = 1e6 / ops.max(1) as f64;
        table.row(vec![
            r.manager.clone(),
            dur(b.app_ns * k),
            dur(b.profiling_ns * k),
            dur(b.migration_ns * k),
            dur(b.total_ns() * k),
            format!("{:+.1}%", 100.0 * (r.ns_per_op_steady() - mtm_nspo) / mtm_nspo),
        ]);
    }
    format!(
        "Fig. 7 — Effectiveness of adaptive memory regions, adaptive page sampling, overhead control, PEBS assist and async migration (VoltDB; time per 1M transactions)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_render_and_full_mtm_listed() {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 4;
        o.threads = 2;
        let s = run(&o);
        assert!(s.contains("MTM-w/o-PEBS") || s.contains("w/o-PEBS"));
        assert!(s.contains("Thermostat"));
    }
}
