//! Fig. 1: profiling recall and accuracy over time for four profilers
//! (DAMON, MTM, Thermostat, AutoTiering) under the same overhead budget,
//! on GUPS with a known hot set.

use mtm::{MtmConfig, MtmManager};
use mtm_baselines::{AutoTiering, Damon, DamonConfig, Thermostat};
use mtm_workloads::{Gups, GupsConfig};
use tiersim::addr::VaRange;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{drive_interval, MemoryManager, SimEnv};
use tiersim::tier::optane_four_tier;

use crate::metrics::{quality, Quality};
use crate::opts::Opts;
use crate::tablefmt::{f, TextTable};

/// One profiler's quality trajectory.
pub struct QualitySeries {
    /// Profiler name.
    pub name: String,
    /// `(virtual seconds, quality)` after each interval.
    pub points: Vec<(f64, Quality)>,
}

impl QualitySeries {
    /// The final quality point.
    pub fn last(&self) -> Quality {
        self.points.last().map(|&(_, q)| q).unwrap_or_default()
    }

    /// Virtual time at which recall first reached `target` (None if never).
    pub fn time_to_recall(&self, target: f64) -> Option<f64> {
        self.points.iter().find(|(_, q)| q.recall >= target).map(|&(t, _)| t)
    }
}

fn gups(opts: &Opts) -> Gups {
    let mut cfg = GupsConfig::paper(opts.scale, opts.threads);
    cfg.rotate_every = Some((opts.intervals / 3).max(4));
    Gups::new(cfg)
}

fn machine(opts: &Opts) -> Machine {
    let mut cfg = MachineConfig::new(optane_four_tier(opts.scale), opts.threads);
    cfg.interval_ns = opts.interval_ns;
    Machine::new(cfg)
}

/// Runs one profiler (as a manager with migration effectively disabled)
/// and probes its detected-hot set after each interval.
fn series<M: MemoryManager>(
    opts: &Opts,
    name: &str,
    mut mgr: M,
    probe: impl Fn(&M) -> Vec<VaRange>,
) -> QualitySeries {
    let mut m = machine(opts);
    let mut wl = gups(opts);
    {
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        tiersim::sim::Workload::setup(&mut wl, &mut env);
    }
    mgr.init(&mut m);
    m.reset_measurement();
    let mut points = Vec::new();
    for ivl in 0..opts.intervals {
        drive_interval(&mut m, &mut mgr, &mut wl, ivl);
        mgr.on_interval(&mut m, ivl);
        let truth = tiersim::sim::Workload::true_hot_ranges(&wl);
        let q = quality(&probe(&mgr), &truth);
        points.push((m.elapsed_ns() / 1e9, q));
        tiersim::sim::Workload::end_of_interval(&mut wl, ivl);
    }
    QualitySeries { name: name.into(), points }
}

/// Runs all four profilers (independent simulations, in parallel on the
/// worker pool) and returns their series in fixed order.
pub fn all_series(opts: &Opts) -> Vec<QualitySeries> {
    use crate::runpool::{run_all, Job};
    let jobs: Vec<Job<'_, QualitySeries>> = vec![
        // MTM: the adaptive profiler, no migration (budget 0).
        Box::new(move || {
            let mut cfg = MtmConfig::default();
            cfg.promote_bytes = 0;
            let scans = cfg.num_scans as f64;
            series(opts, "MTM", MtmManager::new(cfg, 2), move |mgr| {
                mgr.profiler().hot_ranges_above(scans * 0.5)
            })
        }),
        // DAMON: region profiler, threshold at 30 % of checks.
        Box::new(move || {
            let dcfg = DamonConfig::default();
            let thr = (dcfg.checks_per_interval as f64 * 0.3) as u32;
            series(opts, "DAMON", Damon::new(dcfg), move |d| d.hot_ranges_above(thr.max(1)))
        }),
        // Thermostat: protection-fault profiler.
        Box::new(move || series(opts, "Thermostat", Thermostat::new(0), |t| t.hot_ranges())),
        // AutoTiering: random scan windows.
        Box::new(move || series(opts, "AutoTiering", AutoTiering::new(0), |a| a.hot_ranges())),
    ];
    run_all(jobs)
}

/// Renders Fig. 1.
pub fn run(opts: &Opts) -> String {
    let all = all_series(opts);
    let mut table = TextTable::new(&["t (virtual s)", "profiler", "recall", "accuracy"]);
    for s in &all {
        let n = s.points.len();
        // Report a handful of points along the trajectory.
        let picks: Vec<usize> =
            [n / 8, n / 4, n / 2, (3 * n) / 4, n.saturating_sub(1)].into_iter().collect();
        let mut last = usize::MAX;
        for i in picks {
            if i == last || i >= n {
                continue;
            }
            last = i;
            let (t, q) = s.points[i];
            table.row(vec![f(t), s.name.clone(), f(q.recall), f(q.accuracy)]);
        }
    }
    let mut summary = TextTable::new(&["profiler", "final recall", "final accuracy", "t to 50% recall"]);
    for s in &all {
        let q = s.last();
        summary.row(vec![
            s.name.clone(),
            f(q.recall),
            f(q.accuracy),
            s.time_to_recall(0.5).map(|t| format!("{t:.3}s")).unwrap_or_else(|| "never".into()),
        ]);
    }
    format!(
        "Fig. 1 — Profiling effectiveness on GUPS ({} hot set, rotating)\n\n{}\nSummary\n\n{}",
        "20%",
        table.render(),
        summary.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Opts {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 8;
        o.threads = 2;
        o
    }

    #[test]
    fn mtm_profiler_beats_damon_accuracy() {
        let all = all_series(&tiny());
        let mtm = all.iter().find(|s| s.name == "MTM").unwrap().last();
        let damon = all.iter().find(|s| s.name == "DAMON").unwrap().last();
        // The paper's headline: MTM detects hot pages precisely; about
        // half of DAMON's "hot" detections are not hot. At tiny scale we
        // only check the ordering.
        assert!(
            mtm.accuracy >= damon.accuracy * 0.9,
            "MTM accuracy {} vs DAMON {}",
            mtm.accuracy,
            damon.accuracy
        );
        assert!(mtm.recall > 0.2, "MTM recall {}", mtm.recall);
    }

    #[test]
    fn series_are_timestamped_and_monotone() {
        let all = all_series(&tiny());
        for s in &all {
            assert_eq!(s.points.len(), 8);
            for w in s.points.windows(2) {
                assert!(w[1].0 >= w[0].0, "time increases");
            }
        }
    }
}
