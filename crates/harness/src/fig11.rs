//! Fig. 11: migration-mechanism microbenchmark. A 1 GB array (scaled) is
//! allocated and touched in tier 1, then migrated to tiers 2, 3 and 4
//! under three access patterns — read-only (R), half reads half writes
//! (R/W) and write-only (W) — with Linux `move_pages()`, Nimble, and
//! MTM's `move_memory_regions()`.

use mtm::migration::{move_memory_regions_once, nimble_move};
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::migrate::move_pages_linux;
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::tablefmt::{dur, TextTable};

/// Access patterns of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// Sequential read-only.
    R,
    /// Read followed by an update on half the regions.
    RW,
    /// Sequential writes.
    W,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::R => "R",
            Pattern::RW => "R/W",
            Pattern::W => "W",
        }
    }

    /// Fraction of regions written while the async copy is in flight.
    fn dirty_fraction(self) -> f64 {
        match self {
            Pattern::R => 0.0,
            Pattern::RW => 0.5,
            Pattern::W => 1.0,
        }
    }
}

fn array_bytes(opts: &Opts) -> u64 {
    ((1u64 << 30) * 16 / opts.scale).max(4 * PAGE_SIZE_2M)
}

fn fresh(opts: &Opts) -> (Machine, VaRange) {
    let mut cfg = MachineConfig::new(optane_four_tier(opts.scale), 1);
    cfg.interval_ns = opts.interval_ns;
    let mut m = Machine::new(cfg);
    let range = VaRange::from_len(VirtAddr(0), array_bytes(opts));
    m.mmap("array", range, false);
    m.prefault_range(range, &[0]).unwrap();
    (m, range)
}

/// One measurement: critical-path time of migrating the array.
pub fn measure_one(opts: &Opts, mechanism: &str, dst: u16, pattern: Pattern) -> f64 {
    let (mut m, range) = fresh(opts);
    let regions: Vec<VaRange> = range.iter_pages_2m().map(|b| VaRange::from_len(b, PAGE_SIZE_2M)).collect();
    let mut total = 0.0;
    for (i, region) in regions.iter().enumerate() {
        let dirty = (i as f64 + 0.5) / regions.len() as f64 <= pattern.dirty_fraction();
        let before = m.breakdown().migration_ns;
        match mechanism {
            "move_pages" => {
                move_pages_linux(&mut m, *region, dst, 0).expect("move_pages");
            }
            "nimble" => {
                nimble_move(&mut m, *region, dst, 0, 4).expect("nimble");
            }
            "mtm" => {
                move_memory_regions_once(&mut m, *region, dst, 0, 4, dirty).expect("mmr");
            }
            other => panic!("unknown mechanism {other:?}"),
        }
        total += m.breakdown().migration_ns - before;
    }
    total
}

/// Renders Fig. 11.
pub fn run(opts: &Opts) -> String {
    let mut out = format!(
        "Fig. 11 — Migration microbenchmark: {} array, tier 1 -> tier N, critical-path time\n\n",
        tiersim::addr::fmt_bytes(array_bytes(opts))
    );
    // Every (mechanism, destination, pattern) cell is an independent
    // fresh-machine measurement; fan the 27 of them out on the pool.
    let mut jobs = Vec::new();
    for &dst in &[1u16, 2, 3] {
        for pattern in [Pattern::R, Pattern::RW, Pattern::W] {
            for mech in ["move_pages", "nimble", "mtm"] {
                jobs.push((mech, dst, pattern));
            }
        }
    }
    let cells = crate::runpool::map_parallel(jobs, |(mech, dst, pattern)| {
        measure_one(opts, mech, dst, pattern)
    });
    let mut cells = cells.into_iter();
    for label in ["tier 1 -> tier 2", "tier 1 -> tier 3", "tier 1 -> tier 4"] {
        let mut table = TextTable::new(&["pattern", "move_pages()", "Nimble", "MTM", "MTM vs move_pages"]);
        for pattern in [Pattern::R, Pattern::RW, Pattern::W] {
            let mp = cells.next().expect("cell for move_pages");
            let nb = cells.next().expect("cell for nimble");
            let mt = cells.next().expect("cell for mtm");
            table.row(vec![
                pattern.label().to_string(),
                dur(mp),
                dur(nb),
                dur(mt),
                format!("{:+.0}%", 100.0 * (mp - mt) / mp),
            ]);
        }
        out.push_str(&format!("{label}\n{}\n", table.render()));
    }
    out.push_str("(paper: MTM ~40% better than move_pages for R, ~23% for R/W, and roughly even for W)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtm_wins_reads_and_ties_writes() {
        let mut o = Opts::quick();
        o.scale = 1 << 12;
        let mp_r = measure_one(&o, "move_pages", 3, Pattern::R);
        let mt_r = measure_one(&o, "mtm", 3, Pattern::R);
        let mt_w = measure_one(&o, "mtm", 3, Pattern::W);
        assert!(mt_r < mp_r * 0.7, "async copy wins for reads: {mt_r} vs {mp_r}");
        assert!(mt_w > mt_r * 1.5, "write pattern pays the exposed copy");
        // W lands in the same ballpark as move_pages (the paper reports a
        // near-tie; our move_pages also pays per-4KB sequential overheads,
        // so MTM keeps a modest edge).
        assert!(mt_w < mp_r && mt_w * 3.0 > mp_r, "mt_w={mt_w} mp_r={mp_r}");
    }

    #[test]
    fn nimble_beats_move_pages_via_parallel_copy() {
        let mut o = Opts::quick();
        o.scale = 1 << 12;
        let mp = measure_one(&o, "move_pages", 2, Pattern::R);
        let nb = measure_one(&o, "nimble", 2, Pattern::R);
        assert!(nb < mp, "nimble {nb} < move_pages {mp}");
    }
}
