//! The overall evaluation matrix (Sec. 9.1): every manager on every
//! workload. Fig. 4 (normalized runtime), Fig. 5 (time breakdown), Table 3
//! (hot volume / fast-tier accesses), Table 5 (MTM memory overhead) and
//! Table 7 (region statistics) all read from these shared, cached runs.

use std::sync::Arc;

use tiersim::sim::RunReport;
use tiersim::tier::optane_four_tier;

use crate::opts::Opts;
use crate::runs::{cached_run, prewarm, OVERALL_MANAGERS, WORKLOADS};
use crate::tablefmt::{dur, f, TextTable};

/// Returns the report of one pair from the shared cache.
pub fn report(manager: &str, workload: &str, opts: &Opts) -> Arc<RunReport> {
    cached_run(manager, workload, opts)
}

/// The cross product of managers and workloads, for [`prewarm`].
pub fn matrix(managers: &[&'static str], workloads: &[&'static str]) -> Vec<(&'static str, &'static str)> {
    let mut pairs = Vec::with_capacity(managers.len() * workloads.len());
    for &m in managers {
        for &w in workloads {
            pairs.push((m, w));
        }
    }
    pairs
}

/// Fig. 4: overall performance normalized to first-touch NUMA.
pub fn fig4(opts: &Opts) -> String {
    prewarm(&matrix(&OVERALL_MANAGERS, &WORKLOADS), opts);
    let mut headers = vec!["workload"];
    headers.extend(OVERALL_MANAGERS);
    let mut table = TextTable::new(&headers);
    let mut ln_sums = vec![0.0f64; OVERALL_MANAGERS.len()];
    for wl in WORKLOADS {
        let base = report("first-touch", wl, opts).ns_per_op_steady();
        let mut row = vec![wl.to_string()];
        for (i, mgr) in OVERALL_MANAGERS.iter().enumerate() {
            let t = report(mgr, wl, opts).ns_per_op_steady();
            let norm = t / base;
            ln_sums[i] += norm.ln();
            row.push(f(norm));
        }
        table.row(row);
    }
    let mut mean_row = vec!["geo-mean".to_string()];
    for s in &ln_sums {
        mean_row.push(f((s / WORKLOADS.len() as f64).exp()));
    }
    table.row(mean_row);
    format!(
        "Fig. 4 — Overall performance (time per unit of work, normalized to first-touch NUMA; lower is better)\n\n{}",
        table.render()
    )
}

/// Fig. 5: execution-time breakdown (application / profiling / migration)
/// for the four systems that use all tiers.
pub fn fig5(opts: &Opts) -> String {
    const MANAGERS: [&str; 4] = ["first-touch", "autonuma", "autotiering", "MTM"];
    prewarm(&matrix(&MANAGERS, &WORKLOADS), opts);
    let mut table =
        TextTable::new(&["workload", "system", "app", "profiling", "migration", "total"]);
    for wl in WORKLOADS {
        // Normalize every system to the same amount of work (1M ops).
        for mgr in MANAGERS {
            let r = report(mgr, wl, opts);
            let (b, ops) = r.steady();
            if ops == 0 {
                // A zero-op steady window would make the per-1M-op scale
                // factor meaningless; report the row explicitly as n/a
                // rather than printing garbage.
                eprintln!(
                    "warning: fig5 {mgr}/{wl}: no operations completed in the steady window; reporting n/a"
                );
                table.row(vec![
                    wl.to_string(),
                    r.manager.clone(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
                continue;
            }
            let k = 1e6 / ops as f64;
            table.row(vec![
                wl.to_string(),
                r.manager.clone(),
                dur(b.app_ns * k),
                dur(b.profiling_ns * k),
                dur(b.migration_ns * k),
                dur(b.total_ns() * k),
            ]);
        }
    }
    format!(
        "Fig. 5 — Breakdown of execution time per 1M operations of work (profiling stays within the 5% constraint)\n\n{}",
        table.render()
    )
}

/// Table 3: hot-page volume identified and fast-tier accesses.
pub fn table3(opts: &Opts) -> String {
    const MANAGERS: [&str; 3] = ["vanilla-autonuma", "autonuma", "MTM"];
    prewarm(&matrix(&MANAGERS, &WORKLOADS), opts);
    let topo = optane_four_tier(opts.scale);
    let mut table = TextTable::new(&[
        "workload",
        "system",
        "hot volume identified (paper scale)",
        "fast-tier accesses (M)",
    ]);
    for wl in WORKLOADS {
        for mgr in MANAGERS {
            let r = report(mgr, wl, opts);
            let fast = r.accesses_at_rank(&topo, 0, 0);
            table.row(vec![
                wl.to_string(),
                r.manager.clone(),
                opts.paper_bytes(r.hot_bytes_identified),
                f(fast as f64 / 1e6),
            ]);
        }
    }
    format!(
        "Table 3 — Hot pages identified and fast-tier accesses (vanilla vs patched tiered-AutoNUMA vs MTM)\n\n{}",
        table.render()
    )
}

/// Table 5: MTM's metadata memory overhead per workload.
pub fn table5(opts: &Opts) -> String {
    prewarm(&matrix(&["MTM"], &WORKLOADS), opts);
    let mut table = TextTable::new(&[
        "workload",
        "memory overhead (sim)",
        "workload memory (sim)",
        "workload memory (paper scale)",
        "overhead %",
    ]);
    for wl in WORKLOADS {
        let r = report("MTM", wl, opts);
        let pct = 100.0 * r.metadata_bytes as f64 / r.footprint.max(1) as f64;
        table.row(vec![
            wl.to_string(),
            tiersim::addr::fmt_bytes(r.metadata_bytes),
            tiersim::addr::fmt_bytes(r.footprint),
            opts.paper_bytes(r.footprint),
            format!("{pct:.4}"),
        ]);
    }
    format!("Table 5 — Extra memory used by MTM for memory management\n\n{}", table.render())
}

/// Table 7: statistics of region formation under MTM.
pub fn table7(opts: &Opts) -> String {
    prewarm(&matrix(&["MTM"], &WORKLOADS), opts);
    let mut table = TextTable::new(&[
        "workload",
        "# of PI",
        "avg # MR merged / PI",
        "avg # MR split / PI",
        "avg # MR in a PI",
    ]);
    for wl in WORKLOADS {
        let r = report("MTM", wl, opts);
        let rs = r.region_stats.expect("MTM reports region stats");
        table.row(vec![
            wl.to_string(),
            rs.intervals.to_string(),
            f(rs.avg_merged),
            f(rs.avg_split),
            f(rs.avg_regions),
        ]);
    }
    format!("Table 7 — Statistics of forming memory regions using MTM\n\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Opts {
        let mut o = Opts::quick();
        o.scale = 1 << 13;
        o.intervals = 3;
        o.threads = 2;
        o
    }

    #[test]
    fn fig4_normalizes_to_first_touch() {
        let s = fig4(&tiny());
        assert!(s.contains("GUPS"));
        assert!(s.contains("MTM"));
        // First-touch normalizes to itself: first data column is 1.00.
        let line = s.lines().find(|l| l.starts_with("GUPS")).unwrap();
        assert!(line.split_whitespace().nth(1).unwrap().starts_with("1.0"));
        // The summary row is a true geometric mean; first-touch's is
        // exactly 1.00 (geo-mean of all-ones), which the old arithmetic
        // "geo-mean-ish (avg)" row also satisfied but mislabeled.
        let mean = s.lines().find(|l| l.starts_with("geo-mean")).unwrap();
        assert!(!mean.contains("avg"));
        assert!(mean.split_whitespace().nth(1).unwrap().starts_with("1.0"));
    }

    #[test]
    fn breakdown_and_tables_render() {
        let o = tiny();
        assert!(fig5(&o).contains("profiling"));
        assert!(table3(&o).contains("fast-tier"));
        assert!(table5(&o).contains("overhead"));
        assert!(table7(&o).contains("avg # MR"));
    }
}
