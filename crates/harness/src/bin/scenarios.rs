//! Scenario sweep: serving-style traffic generators (hot-set drift,
//! diurnal load, flash crowds) and tenant churn under global
//! arbitration, with phase-transition metrics and an always-on
//! checkpoint/resume differential (see `mtm_harness::scenarios`). Not
//! part of `bin/all` — `results/ALL.txt` stays a batch-workload
//! artifact.
//!
//! `results/scenarios.txt` is only (re)written when the sweep shape is
//! unrestricted (`MTM_SCENARIO_SET`/`MTM_SCENARIO_INTERVALS` unset), so
//! a filtered smoke run never clobbers the committed full table.

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?} on {} worker(s)", mtm_harness::runpool::jobs());
    let out = mtm_harness::scenarios::run(&opts);
    println!("{out}");
    if mtm_harness::scenarios::axes_unrestricted() {
        if let Err(e) = mtm_harness::save_result("scenarios", &out) {
            eprintln!("warning: could not save results/scenarios.txt: {e}");
        }
    }
}
