//! Diagnostic: run MTM on a workload and dump internal policy state.

use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::drive_interval;
use tiersim::tier::optane_four_tier;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wl_name = args.get(1).cloned().unwrap_or_else(|| "GUPS".into());
    let opts = mtm_harness::Opts::from_env();
    let topo = optane_four_tier(opts.scale);
    let mut mc = MachineConfig::new(topo.clone(), opts.threads);
    mc.interval_ns = opts.interval_ns;
    let mut machine = Machine::new(mc);
    let mut mgr = mtm::MtmManager::new(mtm_harness::runs::mtm_config(&opts), topo.nodes as usize);
    let mut wl = mtm_workloads::build_paper_workload(&wl_name, opts.scale, opts.threads).unwrap();
    {
        use tiersim::sim::MemoryManager;
        let mut env = tiersim::sim::SimEnv { machine: &mut machine, manager: &mut mgr };
        wl.setup(&mut env);
        drop(env);
        mgr.init(&mut machine);
    }
    machine.reset_measurement();
    use tiersim::sim::MemoryManager;
    let mut last_mig = 0.0;
    for ivl in 0..opts.intervals {
        drive_interval(&mut machine, &mut mgr, wl.as_mut(), ivl);
        mgr.on_interval(&mut machine, ivl);
        wl.end_of_interval(ivl);
        let mig = machine.breakdown().migration_ns;
        if ivl % 8 == 0 { println!("   mig this ivl: {:.3}ms (cum {:.1}ms)", (mig-last_mig)/1e6, mig/1e6); }
        last_mig = mig;
        if std::env::var("MTM_WATCH").is_ok() && ivl < 30 {
            let watch = tiersim::VirtAddr(0x61000000);
            if let Some(r) = mgr.profiler().regions().iter().find(|r| r.range.contains(watch)) {
                println!(
                    "watch ivl {ivl}: {:?} hi={:.2} whi={:.2} quota={} active={} page={:?} ev={} comp={:?} home={}",
                    r.range, r.hi, r.whi, r.quota, r.pebs_active, r.pebs_page, r.evidence,
                    mtm::residency::majority_component(&machine, r.range), r.home_node
                );
            }
        }
        if ivl % 8 == 0 || ivl == opts.intervals - 1 {
            let p = mgr.policy_totals();
            let ms = mgr.migration_stats();
            let regions = mgr.profiler().regions();
            let nhot = regions.iter().filter(|r| r.whi >= 1.5).count();
            println!(
                "ivl {ivl}: regions={} hot_regions={} promoted={} ({}MB) demoted={} ({}MB) async_clean={} switched={} dropped={}(ns={} em={}) resid={:?}",
                regions.len(), nhot, p.promoted, p.promoted_bytes >> 20, p.demoted,
                p.demoted_bytes >> 20, ms.async_clean, ms.switched_sync, ms.dropped, ms.dropped_nospace, ms.dropped_empty,
                machine.residency().iter().map(|b| b >> 20).collect::<Vec<_>>()
            );
        }
    }
    // Dump every region with residency at the end.
    if std::env::var("MTM_DUMP_ALL").is_ok() {
        for r in mgr.profiler().regions() {
            let comp = mtm::residency::majority_component(&machine, r.range);
            println!(
                "ALL {:?} len={}MB whi={:.2} comp={:?} home={} quota={}",
                r.range, r.len() >> 20, r.whi, comp, r.home_node, r.quota
            );
        }
    }
    // Dump the hottest 12 regions.
    let mut idx: Vec<usize> = (0..mgr.profiler().regions().len()).collect();
    idx.sort_by(|&a, &b| mgr.profiler().regions()[b].whi.partial_cmp(&mgr.profiler().regions()[a].whi).unwrap());
    for &i in idx.iter().take(12) {
        let r = &mgr.profiler().regions()[i];
        println!("region {:?} len={}MB whi={:.2} hi={:.2} quota={} node={}",
            r.range, r.len() >> 20, r.whi, r.hi, r.quota, r.dominant_node());
    }
}
