//! Multi-tenant arbitration sweep: N co-scheduled tenants sharing the
//! four-tier machine under a global arbiter (see
//! `mtm_harness::multitenant`). Not part of `bin/all` —
//! `results/ALL.txt` stays a single-tenant artifact.
//!
//! `results/multitenant.txt` is only (re)written when both sweep axes
//! are unrestricted (`MTM_TENANTS`/`MTM_ARBITER` unset), so a filtered
//! smoke run never clobbers the committed full table.

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?} on {} worker(s)", mtm_harness::runpool::jobs());
    let out = mtm_harness::multitenant::run(&opts);
    println!("{out}");
    if mtm_harness::multitenant::axes_unrestricted() {
        if let Err(e) = mtm_harness::save_result("multitenant", &out) {
            eprintln!("warning: could not save results/multitenant.txt: {e}");
        }
    }
}
