//! Validates emitted telemetry: every `results/telemetry/*.json` (or the
//! directory given as the first argument) must parse as JSON and carry
//! the required top-level keys of the telemetry schema. Exits non-zero
//! on any malformed file, or when the directory holds no telemetry at
//! all — `scripts/verify.sh` runs this after a `MTM_TELEMETRY=1` smoke.

use std::path::PathBuf;
use std::process::ExitCode;

fn check_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let json = obs::json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    for key in obs::snapshot::REQUIRED_KEYS {
        if json.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let events = json.get("events").and_then(|v| v.as_arr()).ok_or("events is not an array")?;
    for ev in events {
        if ev.get("kind").and_then(|k| k.as_str()).is_none() {
            return Err("event without a string \"kind\"".into());
        }
    }
    let series = json.get("series").ok_or("series missing")?;
    for field in ["wall_ns", "overhead_pct", "migrated_bytes", "occupancy"] {
        if series.get(field).and_then(|v| v.as_arr()).is_none() {
            return Err(format!("series.{field} is not an array"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(mtm_harness::metrics::TELEMETRY_DIR));
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("telemetry_check: no .json files under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut bad = 0usize;
    for f in &files {
        match check_file(f) {
            Ok(()) => println!("ok {}", f.display()),
            Err(e) => {
                eprintln!("telemetry_check: {}: {e}", f.display());
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("telemetry_check: {bad}/{} file(s) failed", files.len());
        return ExitCode::FAILURE;
    }
    println!("telemetry_check: {} file(s) valid", files.len());
    ExitCode::SUCCESS
}
