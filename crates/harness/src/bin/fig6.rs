//! Regenerates the paper's `fig6` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig6");
}
