//! Regenerates the paper's `table5` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("table5");
}
