//! Regenerates the paper's `fig8` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig8");
}
