//! Regenerates the paper's `table6` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("table6");
}
