//! Regenerates the paper's `table7` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("table7");
}
