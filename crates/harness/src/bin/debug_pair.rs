//! Diagnostic: run one (manager, workload) pair and dump details.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mgr = args.get(1).cloned().unwrap_or_else(|| "MTM".into());
    let wl = args.get(2).cloned().unwrap_or_else(|| "GUPS".into());
    let opts = mtm_harness::Opts::from_env();
    let r = mtm_harness::runs::run_pair(&mgr, &wl, &opts);
    println!("manager={} workload={} total={:.3}ms", r.manager, r.workload, r.total_ns / 1e6);
    println!("breakdown app={:.3}ms prof={:.3}ms mig={:.3}ms",
        r.breakdown.app_ns / 1e6, r.breakdown.profiling_ns / 1e6, r.breakdown.migration_ns / 1e6);
    println!("residency={:?}", r.residency.iter().map(|b| b >> 20).collect::<Vec<_>>());
    println!("counts={:?}", r.component_counts);
    println!("stats={:?}", r.machine);
    println!("ops={} ops/s={:.0} ns/op={:.1} steady_ns/op={:.1}", r.ops_completed, r.ops_per_second(), r.ns_per_op(), r.ns_per_op_steady());
    let (sb, sops) = r.steady();
    println!("steady: app={:.2}ms prof={:.2}ms mig={:.2}ms ops={} app_ns/op={:.1}",
        sb.app_ns/1e6, sb.profiling_ns/1e6, sb.migration_ns/1e6, sops, sb.app_ns/sops.max(1) as f64);
    println!("hot_bytes={}MB meta={}KB", r.hot_bytes_identified >> 20, r.metadata_bytes >> 10);
    if let Some(rs) = r.region_stats { println!("regions: {rs:?}"); }
    // Window trend: fast-tier share over intervals.
    let n = r.window_counts.len();
    for i in [0, n/4, n/2, 3*n/4, n-1] {
        let w = &r.window_counts[i];
        let total: u64 = w.iter().map(|c| c.total()).sum();
        let fast = w[0].total();
        println!("ivl {i}: fast share {:.2} (total {total}) wall={:.2}ms", fast as f64 / total.max(1) as f64, r.interval_ns[i]/1e6);
    }
}
