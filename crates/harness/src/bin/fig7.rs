//! Regenerates the paper's `fig7` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig7");
}
