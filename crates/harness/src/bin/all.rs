//! Runs every experiment in paper order, printing and saving each report
//! under `results/`, and writes a combined `results/ALL.txt`.
//!
//! The shared evaluation matrix (every manager × workload pair the
//! overall experiments and the ablation study read) is prewarmed in
//! parallel up front on `min(available_parallelism, MTM_JOBS)` workers;
//! the per-experiment rendering then runs from cache hits. Reports are
//! bit-identical for any `MTM_JOBS` value.

use mtm_harness::runs::{prewarm, run_cache_stats, OVERALL_MANAGERS, WORKLOADS};

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?} on {} worker(s)", mtm_harness::runpool::jobs());
    // lint:allow(wall-clock): stderr progress timing only; never reaches reports
    let t_all = std::time::Instant::now();

    // Everything fig4/fig5/table3/table5/table7 and fig7 will ask for.
    let mut pairs = mtm_harness::overall::matrix(&OVERALL_MANAGERS, &WORKLOADS);
    pairs.extend(mtm_harness::fig7::SYSTEMS.iter().map(|&s| (s, "VoltDB")));
    prewarm(&pairs, &opts);

    let mut combined = String::new();
    for e in mtm_harness::experiments() {
        eprintln!("==> {} ({})", e.id, e.title);
        // lint:allow(wall-clock): stderr progress timing only; never reaches reports
        let t0 = std::time::Instant::now();
        let out = (e.run)(&opts);
        eprintln!("    done in {:.1}s", t0.elapsed().as_secs_f64());
        println!("{out}");
        if let Err(err) = mtm_harness::save_result(e.id, &out) {
            eprintln!("warning: could not save {}: {err}", e.id);
        }
        combined.push_str(&out);
        combined.push_str("\n\n");
    }
    if let Err(err) = mtm_harness::save_result("ALL", &combined) {
        eprintln!("warning: could not save ALL: {err}");
    }
    let stats = run_cache_stats();
    eprintln!(
        "all experiments done in {:.1}s — run cache: {} executed, {} hits, {} coalesced",
        t_all.elapsed().as_secs_f64(),
        stats.misses,
        stats.hits,
        stats.coalesced
    );
}
