//! Runs every experiment in paper order, printing and saving each report
//! under `results/`, and writes a combined `results/ALL.txt`.

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?}");
    let mut combined = String::new();
    for e in mtm_harness::experiments() {
        eprintln!("==> {} ({})", e.id, e.title);
        let t0 = std::time::Instant::now();
        let out = (e.run)(&opts);
        eprintln!("    done in {:.1}s", t0.elapsed().as_secs_f64());
        println!("{out}");
        if let Err(err) = mtm_harness::save_result(e.id, &out) {
            eprintln!("warning: could not save {}: {err}", e.id);
        }
        combined.push_str(&out);
        combined.push_str("\n\n");
    }
    if let Err(err) = mtm_harness::save_result("ALL", &combined) {
        eprintln!("warning: could not save ALL: {err}");
    }
}
