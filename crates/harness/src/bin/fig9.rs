//! Regenerates the paper's `fig9` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig9");
}
