//! Admission-control and shadow-copy sweep: the four `MTM_ADMIT`
//! policies × shadow mode × fault levels (see `mtm_harness::admission`).
//! Not part of `bin/all` — `results/ALL.txt` stays a legacy-pipeline
//! artifact.

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?} on {} worker(s)", mtm_harness::runpool::jobs());
    let out = mtm_harness::admission::run(&opts);
    println!("{out}");
    if let Err(e) = mtm_harness::save_result("admission", &out) {
        eprintln!("warning: could not save results/admission.txt: {e}");
    }
}
