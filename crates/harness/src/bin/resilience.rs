//! Robustness sweep: all managers under increasing injected-fault
//! intensity (see `mtm_harness::resilience`). Not part of `bin/all` —
//! `results/ALL.txt` stays a healthy-machine artifact.

fn main() {
    let opts = mtm_harness::Opts::from_env();
    eprintln!("running with {opts:?} on {} worker(s)", mtm_harness::runpool::jobs());
    let out = mtm_harness::resilience::run(&opts);
    println!("{out}");
    if let Err(e) = mtm_harness::save_result("resilience", &out) {
        eprintln!("warning: could not save results/resilience.txt: {e}");
    }
}
