//! Regenerates the paper's `fig12` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig12");
}
