//! `simulate` — run a custom (manager, workload) scenario from the
//! command line and print the full report.
//!
//! ```sh
//! cargo run --release -p mtm-harness --bin simulate -- \
//!     --manager MTM --workload Cassandra --scale 512 --intervals 60
//! ```
//!
//! Managers: `first-touch`, `hmc`, `vanilla-autonuma`, `autonuma`,
//! `autotiering`, `hemem`, `thermostat`, `damon`, `MTM`,
//! `MTM:w/o-{AMR,APS,OC,PEBS,async}`, `MTM:fast-first`.
//! Workloads: `GUPS`, `VoltDB`, `Cassandra`, `BFS`, `SSSP`, `Spark`.

use mtm_harness::runs::{machine_for, try_build_manager};
use mtm_harness::Opts;
use tiersim::addr::fmt_bytes;
use tiersim::sim::run_scenario;
use tiersim::tier::{optane_four_tier, two_tier};

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--manager M] [--workload W] [--scale N] [--threads N] \
         [--intervals N] [--interval-ns F] [--two-tier]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = Opts::from_env();
    let mut manager = "MTM".to_string();
    let mut workload = "GUPS".to_string();
    let mut use_two_tier = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--manager" => manager = val(&mut args),
            "--workload" => workload = val(&mut args),
            "--scale" => opts.scale = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--intervals" => opts.intervals = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--interval-ns" => opts.interval_ns = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--two-tier" => use_two_tier = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let topo = if use_two_tier { two_tier(opts.scale) } else { optane_four_tier(opts.scale) };
    let mut machine = machine_for(&manager, &opts, topo.clone());
    let Some(mut mgr) = try_build_manager(&manager, &opts, &topo) else {
        eprintln!("unknown manager {manager:?}");
        usage();
    };
    let Some(mut wl) = mtm_workloads::build_paper_workload(&workload, opts.scale, opts.threads)
    else {
        eprintln!("unknown workload {workload:?}");
        usage();
    };
    let r = run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals);

    println!("manager      : {}", r.manager);
    println!("workload     : {} ({} footprint, paper-scale {})",
        r.workload, fmt_bytes(r.footprint), opts.paper_bytes(r.footprint));
    println!("intervals    : {} x {:.2} ms", opts.intervals, opts.interval_ns / 1e6);
    println!("ops          : {}", r.ops_completed);
    println!("ns/op        : {:.1} (steady {:.1})", r.ns_per_op(), r.ns_per_op_steady());
    println!(
        "time         : app {:.2} ms | profiling {:.2} ms | migration {:.2} ms",
        r.breakdown.app_ns / 1e6,
        r.breakdown.profiling_ns / 1e6,
        r.breakdown.migration_ns / 1e6
    );
    println!("migrated     : {} pages / {}", r.machine.pages_migrated, fmt_bytes(r.machine.bytes_migrated));
    println!("hot detected : {}", fmt_bytes(r.hot_bytes_identified));
    println!("metadata     : {}", fmt_bytes(r.metadata_bytes));
    println!("residency by tier (node-0 view):");
    for rank in 0..topo.num_components() {
        let c = topo.component_at_rank(0, rank);
        println!(
            "  tier {} {:6} : {:>10}  ({} accesses)",
            rank + 1,
            topo.components[c as usize].name,
            fmt_bytes(r.residency[c as usize]),
            r.component_counts[c as usize].total()
        );
    }
    if let Some(rs) = r.region_stats {
        println!(
            "regions      : avg {:.0} live, {:.1} merged + {:.1} split per interval",
            rs.avg_regions, rs.avg_merged, rs.avg_split
        );
    }
}
