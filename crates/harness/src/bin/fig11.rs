//! Regenerates the paper's `fig11` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig11");
}
