//! Regenerates the paper's `fig1` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig1");
}
