//! Regenerates the paper's `fig4` (see DESIGN.md experiment index).

fn main() {
    mtm_harness::run_and_save("fig4");
}
