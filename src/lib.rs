//! Umbrella crate re-exporting the MTM reproduction workspace.

pub use mtm;
pub use mtm_baselines as baselines;
pub use mtm_harness as harness;
pub use mtm_workloads as workloads;
pub use tiersim;
