//! Property-based tests over the core data structures and invariants,
//! run on the in-repo `proptest-lite` harness (see that crate's docs for
//! seed replay: failures print a `PROPTEST_LITE_SEED` to rerun with).

use mtm::region::{Region, RegionList};
use mtm_harness::metrics::{intersection_bytes, normalize, quality, total_bytes};
use proptest_lite::{gen, prop_assert, prop_assert_eq, prop_check};
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use tiersim::frame::{FrameAllocator, FrameSize};
use tiersim::machine::{AccessKind, Machine, MachineConfig};
use tiersim::migrate::{relocate_with_retry, RetryPolicy};
use tiersim::tier::tiny_two_tier;

fn region_list(chunks: u64) -> RegionList {
    let mut list = RegionList::new(2);
    let bases: Vec<VirtAddr> = (0..chunks).map(|c| VirtAddr(c * PAGE_SIZE_2M)).collect();
    list.sync_pde_bases(&bases);
    list
}

/// Arbitrary sequences of observations, merges and splits keep the
/// region list sorted, disjoint and quota-positive, and never change
/// the total bytes covered.
#[test]
fn region_list_stays_well_formed() {
    prop_check!(
        "region_list_stays_well_formed",
        64,
        (
            gen::vec(gen::f64_range(0.0, 3.0), 16),
            gen::vec(gen::f64_range(0.0, 3.0), 16),
            gen::vec(gen::u8_range(0, 3), 12),
        ),
        |(his, spreads, ops)| {
            let mut list = region_list(16);
            let covered: u64 = list.regions().iter().map(Region::len).sum();
            for (r, (&hi, &spread)) in list.regions_mut().iter_mut().zip(his.iter().zip(spreads)) {
                r.observe(hi, 0.5);
                r.spread = spread;
                r.sample_max = spread.max(hi);
                r.evidence = 1;
            }
            for op in ops {
                match op {
                    0 => {
                        list.merge_pass(1.0, 3, |_, _| true);
                    }
                    1 => {
                        list.split_pass(2.0, 3, |_| false);
                    }
                    _ => {
                        list.split_pass(0.5, 3, |_| true);
                    }
                }
                prop_assert!(list.is_well_formed());
                let now: u64 = list.regions().iter().map(Region::len).sum();
                prop_assert_eq!(now, covered, "coverage is preserved");
            }
        }
    );
}

/// The region EMA (Eq. 2) stays inside the envelope of its observations,
/// and the hotness histogram over a set of regions does not depend on
/// the order the regions were observed in within one interval.
#[test]
fn ema_bounded_and_histogram_order_insensitive() {
    prop_check!(
        "ema_bounded_and_histogram_order_insensitive",
        64,
        (
            gen::vec_in(gen::f64_range(0.0, 8.0), 1, 16),
            gen::f64_range(0.05, 1.0),
            gen::u64_range(0, 15),
        ),
        |(his, alpha, rot)| {
            let alpha = *alpha;
            // EMA envelope: starting from whi = 0, every update keeps the
            // EMA within [0, max observation so far].
            let mut list = region_list(1);
            let mut max_seen = 0.0f64;
            for &hi in his {
                list.regions_mut()[0].observe(hi, alpha);
                max_seen = max_seen.max(hi);
                let whi = list.regions()[0].whi;
                prop_assert!(
                    (0.0..=max_seen + 1e-12).contains(&whi),
                    "whi {whi} escaped [0, {max_seen}]"
                );
            }
            // Histogram order-insensitivity: each region observes one hi
            // this interval; rotating which region got which observation
            // must not change the bucket counts.
            let n = his.len() as u64;
            let mut a = region_list(n);
            let mut b = region_list(n);
            for (i, r) in a.regions_mut().iter_mut().enumerate() {
                r.observe(his[i], alpha);
            }
            let rot = (*rot as usize) % his.len();
            for (i, r) in b.regions_mut().iter_mut().enumerate() {
                r.observe(his[(i + rot) % his.len()], alpha);
            }
            let ha = mtm::histogram::HotnessHistogram::build(a.regions(), 8, 8.0);
            let hb = mtm::histogram::HotnessHistogram::build(b.regions(), 8, 8.0);
            prop_assert_eq!(ha.counts(), hb.counts(), "bucket counts are order-insensitive");
        }
    );
}

/// Merge/split round-trips preserve total address-range coverage with
/// no overlap, and every region boundary stays 2 MB-aligned.
#[test]
fn merge_split_round_trips_keep_coverage_and_alignment() {
    prop_check!(
        "merge_split_round_trips_keep_coverage_and_alignment",
        64,
        (gen::vec(gen::f64_range(0.0, 3.0), 24), gen::u8_range(1, 4)),
        |(his, rounds)| {
            let mut list = region_list(24);
            let covered: u64 = list.regions().iter().map(Region::len).sum();
            for (r, &hi) in list.regions_mut().iter_mut().zip(his) {
                r.observe(hi, 0.5);
                r.spread = hi;
                r.sample_max = hi;
                r.evidence = 1;
            }
            for _ in 0..*rounds {
                list.merge_pass(f64::INFINITY, 3, |_, _| true);
                for r in list.regions_mut() {
                    r.evidence = 1;
                }
                list.split_pass(0.5, 3, |_| true);
                prop_assert!(list.is_well_formed(), "sorted, disjoint, quota-positive");
                let now: u64 = list.regions().iter().map(Region::len).sum();
                prop_assert_eq!(now, covered, "round-trip preserves coverage");
                for r in list.regions() {
                    prop_assert_eq!(r.range.start.0 % PAGE_SIZE_2M, 0, "2 MB-aligned start");
                    prop_assert_eq!(r.range.end.0 % PAGE_SIZE_2M, 0, "2 MB-aligned end");
                }
            }
        }
    );
}

/// Merging frees exactly the quota difference; splitting adds at most
/// one per split; every region keeps at least one sample.
#[test]
fn quota_accounting_balances() {
    prop_check!(
        "quota_accounting_balances",
        64,
        gen::vec(gen::u32_range(1, 16), 12),
        |quotas| {
            let mut list = region_list(12);
            for (r, &q) in list.regions_mut().iter_mut().zip(quotas) {
                r.quota = q;
                r.evidence = 1;
            }
            let before = list.total_quota();
            let freed = list.merge_pass(f64::INFINITY, 3, |_, _| true);
            let after = list.total_quota();
            prop_assert_eq!(after + freed, before, "no samples are lost by merging");
            prop_assert!(list.regions().iter().all(|r| r.quota >= 1));
        }
    );
}

/// The frame allocator never double-allocates and its accounting is
/// exact under arbitrary alloc/free interleavings.
#[test]
fn frame_allocator_is_sound() {
    prop_check!(
        "frame_allocator_is_sound",
        64,
        gen::vec((gen::u8_range(0, 2), gen::u8_range(0, 2)), 64),
        |ops| {
            let mut alloc = FrameAllocator::new(0, 16 * PAGE_SIZE_2M);
            let mut live: Vec<(tiersim::addr::PhysAddr, FrameSize)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &(op, size) in ops {
                let size = if size == 0 { FrameSize::Base4K } else { FrameSize::Huge2M };
                if op == 0 {
                    if let Ok(frame) = alloc.alloc(size) {
                        prop_assert!(seen.insert(frame), "no double allocation of {frame:?}");
                        live.push((frame, size));
                    }
                } else if let Some((frame, size)) = live.pop() {
                    alloc.free_frame(frame, size);
                    seen.remove(&frame);
                }
                let live_bytes: u64 = live.iter().map(|&(_, s)| s.bytes()).sum();
                prop_assert_eq!(alloc.used(), live_bytes, "accounting matches live set");
            }
        }
    );
}

/// Range-set metrics behave like set measures: intersection is
/// symmetric, bounded by both totals, and self-quality is perfect.
#[test]
fn range_metrics_are_measure_like() {
    prop_check!(
        "range_metrics_are_measure_like",
        64,
        (
            gen::vec_in((gen::u64_range(0, 64), gen::u64_range(1, 16)), 1, 8),
            gen::vec_in((gen::u64_range(0, 64), gen::u64_range(1, 16)), 1, 8),
        ),
        |(a, b)| {
            let mk = |v: &Vec<(u64, u64)>| -> Vec<VaRange> {
                v.iter()
                    .map(|&(s, l)| VaRange::from_len(VirtAddr(s * PAGE_SIZE_4K), l * PAGE_SIZE_4K))
                    .collect()
            };
            let (ra, rb) = (mk(a), mk(b));
            let i1 = intersection_bytes(&ra, &rb);
            let i2 = intersection_bytes(&rb, &ra);
            prop_assert_eq!(i1, i2, "intersection is symmetric");
            prop_assert!(i1 <= total_bytes(&ra));
            prop_assert!(i1 <= total_bytes(&rb));
            let q = quality(&ra, &ra);
            prop_assert!((q.recall - 1.0).abs() < 1e-9);
            prop_assert!((q.accuracy - 1.0).abs() < 1e-9);
            // Normalization is idempotent.
            let n = normalize(ra.clone());
            prop_assert_eq!(normalize(n.clone()), n);
        }
    );
}

/// Relocating a range preserves frame versions (no lost writes) and
/// machine-wide byte accounting.
#[test]
fn migration_preserves_data_and_accounting() {
    prop_check!(
        "migration_preserves_data_and_accounting",
        64,
        (gen::vec_in(gen::u64_range(0, 512), 1, 32), gen::u16_range(0, 2)),
        |(writes, dst)| {
            let dst = *dst;
            let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
            let mut m = Machine::new(MachineConfig::new(topo, 1));
            let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
            m.mmap("p", range, false);
            m.prefault_range(range, &[1 - dst]).unwrap();
            // Apply writes and remember per-page counts.
            let mut counts = std::collections::HashMap::new();
            for w in writes {
                let va = VirtAddr(w * PAGE_SIZE_4K);
                m.access(0, va, AccessKind::Write);
                *counts.entry(va).or_insert(0u64) += 1;
            }
            let mapped_before = m.page_table().mapped_bytes();
            let used_before: u64 = m.residency().iter().sum();
            let _ = tiersim::migrate::relocate_range(&mut m, range, dst, 0, 2, false).unwrap();
            prop_assert_eq!(m.page_table().mapped_bytes(), mapped_before);
            prop_assert_eq!(m.residency().iter().sum::<u64>(), used_before);
            for (va, count) in counts {
                let t = m.page_table().translate(va).unwrap();
                prop_assert_eq!(t.pte.frame().component(), dst);
                prop_assert_eq!(m.frame_version(t.pte.frame()), count, "writes survived the move");
            }
        }
    );
}

/// A fault plan replays identically for the same seed: the decision
/// sequence, the stats, and a post-`reset` replay all match, whatever
/// the probabilities or the interleaving of fault classes.
#[test]
fn fault_plan_replay_is_deterministic() {
    prop_check!(
        "fault_plan_replay_is_deterministic",
        64,
        (
            gen::u64_range(0, 1 << 48),
            gen::f64_range(0.0, 1.0),
            gen::f64_range(0.0, 1.0),
            gen::f64_range(0.0, 1.0),
            gen::f64_range(0.0, 1.0),
            gen::vec_in(gen::u8_range(0, 3), 1, 64),
        ),
        |(seed, busy, allocfail, droppebs, drophint, ops)| {
            let spec =
                format!("busy={busy},allocfail={allocfail},droppebs={droppebs},drophint={drophint}");
            let plan = faultsim::FaultPlan::parse(&spec).unwrap();
            let mut a = faultsim::FaultState::new(plan.clone(), *seed);
            let mut b = faultsim::FaultState::new(plan, *seed);
            let run = |st: &mut faultsim::FaultState| -> Vec<bool> {
                ops.iter()
                    .map(|&op| match op {
                        0 => st.page_busy(),
                        1 => st.alloc_fail(),
                        2 => st.drop_pebs(),
                        _ => st.drop_hint(),
                    })
                    .collect()
            };
            let ra = run(&mut a);
            let rb = run(&mut b);
            prop_assert_eq!(&ra, &rb, "same seed, same decisions");
            prop_assert_eq!(a.stats(), b.stats());
            a.reset();
            prop_assert_eq!(a.stats().total(), 0, "reset clears the stats");
            let replay = run(&mut a);
            prop_assert_eq!(replay, ra, "reset rewinds to an identical stream");
        }
    );
}

/// Bounded retry never exceeds its attempt budget, its accumulated
/// backoff never exceeds the policy's worst case, and only injected
/// transient errors can make it fail — for any fault probability, seed
/// and attempt bound.
#[test]
fn retry_never_exceeds_attempt_bound() {
    prop_check!(
        "retry_never_exceeds_attempt_bound",
        48,
        (gen::f64_range(0.0, 1.0), gen::u64_range(0, 10_000), gen::u8_range(1, 6)),
        |(busy, seed, max_attempts)| {
            let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
            let mut m = Machine::new(MachineConfig::new(topo, 1));
            let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
            m.mmap("p", range, false);
            m.prefault_range(range, &[0]).unwrap();
            let plan = faultsim::FaultPlan::parse(&format!("busy={busy},allocfail=0.2")).unwrap();
            m.install_faults(plan, *seed);
            let policy =
                RetryPolicy { max_attempts: *max_attempts as u32, ..RetryPolicy::default() };
            let (res, report) = relocate_with_retry(&mut m, range, 1, 0, 1, false, policy);
            prop_assert!(report.attempts >= 1 && report.attempts <= policy.max_attempts);
            prop_assert_eq!(report.retries, report.attempts - 1);
            prop_assert!(report.backoff_ns <= policy.max_total_backoff_ns() + 1e-9);
            // The accumulated backoff must be BIT-identical to the serial
            // sum of the exact integer-doubling steps — backoff comes from
            // u64 doubling, not `f64::powi`, so no platform or rounding
            // mode can produce a different sequence.
            let mut expected_backoff = 0.0f64;
            for attempt in 1..report.attempts {
                expected_backoff += policy.backoff_ns(attempt);
            }
            prop_assert_eq!(
                report.backoff_ns.to_bits(),
                expected_backoff.to_bits(),
                "backoff sequence is bit-identical to the integer-doubling reference"
            );
            match res {
                Ok(out) => prop_assert_eq!(out.pages, 512),
                Err(e) => {
                    prop_assert!(e.is_transient(), "only injected transients can fail here")
                }
            }
        }
    );
}

/// The page table's packed side metadata (per-leaf present/accessed/dirty
/// bitmaps) always agrees with the PTE bits — the source of truth — after
/// arbitrary interleavings of accesses, scans, huge-page splits,
/// relocations and measurement resets. `check_side_metadata` re-derives
/// every bitmap word from the PTEs, so an empty report IS the agreement.
#[test]
fn side_metadata_agrees_with_pte_bits() {
    prop_check!(
        "side_metadata_agrees_with_pte_bits",
        48,
        (gen::u64_range(0, 10_000), gen::vec_in(gen::u8_range(0, 5), 1, 48)),
        |(seed, ops)| {
            let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
            let mut m = Machine::new(MachineConfig::new(topo, 1));
            // One base-page VMA and one THP VMA, so scans and relocations
            // exercise both leaf bitmaps and huge entries (including the
            // split path under a fragmented destination).
            m.mmap("base", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), false);
            let thp_at = 4 * PAGE_SIZE_2M;
            m.mmap("thp", VaRange::from_len(VirtAddr(thp_at), 2 * PAGE_SIZE_2M), true);
            m.prefault_range(VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), &[0]).unwrap();
            m.prefault_range(VaRange::from_len(VirtAddr(thp_at), 2 * PAGE_SIZE_2M), &[0]).unwrap();
            let mut rng = tiersim::rng::SplitMix64::new(*seed);
            for &op in ops {
                // Half the addresses land in the base VMA, half in the THP
                // VMA (the hole between them exercises unmapped paths).
                let va = VirtAddr(rng.below(6 * PAGE_SIZE_2M)).page_4k();
                match op {
                    0 => {
                        let _ = m.access(0, va, AccessKind::Read);
                    }
                    1 => {
                        let _ = m.access(0, va, AccessKind::Write);
                    }
                    2 => {
                        let _ = m.scan_page(va);
                    }
                    3 => {
                        let _ = m.scan_page_clear(va);
                    }
                    4 => {
                        let range = VaRange::from_len(va.page_2m(), PAGE_SIZE_2M);
                        let dst = (rng.below(2)) as u16;
                        let split = rng.below(2) == 0;
                        let _ = tiersim::migrate::relocate_range(&mut m, range, dst, 0, 1, split);
                    }
                    _ => m.reset_measurement(),
                }
                let violations = m.page_table().check_side_metadata();
                prop_assert!(violations.is_empty(), "packed side metadata drifted from PTE bits");
            }
        }
    );
}

/// The retry backoff sequence is exact integer doubling capped at the
/// policy max: platform-exact for any base, cap and attempt number, with
/// an exact `u64 -> f64` conversion (steps are capped far below 2^53).
#[test]
fn backoff_sequence_is_exact_integer_doubling() {
    prop_check!(
        "backoff_sequence_is_exact_integer_doubling",
        64,
        (gen::u64_range(1, 1 << 40), gen::u64_range(1, 1 << 45), gen::u8_range(1, 40)),
        |(base, max, attempts)| {
            let policy =
                RetryPolicy { max_attempts: 8, base_backoff_ns: *base, max_backoff_ns: *max };
            let mut reference = *base;
            for attempt in 1..=(*attempts as u32) {
                let step = policy.backoff_step_ns(attempt);
                prop_assert_eq!(step, reference.min(*max), "exact doubling, capped");
                prop_assert_eq!(
                    policy.backoff_ns(attempt).to_bits(),
                    (step as f64).to_bits(),
                    "f64 view is the exact conversion of the integer step"
                );
                reference = reference.saturating_mul(2);
            }
            // Monotone non-decreasing in the attempt number.
            for attempt in 1..(*attempts as u32) {
                prop_assert!(policy.backoff_step_ns(attempt + 1) >= policy.backoff_step_ns(attempt));
            }
        }
    );
}

/// The async-migration queue ledger is conserved after every operation:
/// bytes charged at enqueue time always equal the bytes still pending
/// plus the bytes settled as committed or dropped — for arbitrary
/// interleavings of enqueues, dirtying writes and commit rounds, under
/// arbitrary transient-fault pressure (busy pages force the
/// abort/re-enqueue path, alloc failures the retry path, and the small
/// destination the full-drop path).
#[test]
fn async_queue_ledger_is_conserved() {
    prop_check!(
        "async_queue_ledger_is_conserved",
        48,
        (
            gen::u64_range(0, 10_000),
            gen::f64_range(0.0, 1.0),
            gen::f64_range(0.0, 0.5),
            gen::vec_in((gen::u8_range(0, 3), gen::u64_range(0, 5)), 1, 48),
        ),
        |(seed, busy, allocfail, ops)| {
            let topo = tiny_two_tier(16 * PAGE_SIZE_2M, 4 * PAGE_SIZE_2M);
            let mut m = Machine::new(MachineConfig::new(topo, 1));
            let r = VaRange::from_len(VirtAddr(0), 6 * PAGE_SIZE_2M);
            m.mmap("a", r, false);
            m.prefault_range(r, &[0]).unwrap();
            let plan =
                faultsim::FaultPlan::parse(&format!("busy={busy},allocfail={allocfail}")).unwrap();
            m.install_faults(plan, *seed);
            let mut e = mtm::MigrationEngine::new(2, true);
            let mut interval = 0u64;
            for &(op, page) in ops {
                let range = VaRange::from_len(VirtAddr(page * PAGE_SIZE_2M), PAGE_SIZE_2M);
                match op {
                    0 => e.migrate(&mut m, range, 1, 0),
                    1 => e.migrate(&mut m, range, 0, 0),
                    2 => {
                        m.access(0, range.start, AccessKind::Write);
                    }
                    _ => {
                        interval += 1;
                        e.note_interval(interval);
                        e.resolve_pending(&mut m);
                    }
                }
                let s = e.stats();
                prop_assert_eq!(
                    s.enqueued_bytes,
                    e.pending_ledger_bytes() + s.committed_bytes + s.dropped_bytes,
                    "conservation must hold after every operation"
                );
            }
            // Drain: each entry settles within MAX_ASYNC_ATTEMPTS commit
            // rounds, so a few more resolve all of them — and every settled
            // entry must have disarmed its write watch.
            for _ in 0..8 {
                interval += 1;
                e.note_interval(interval);
                e.resolve_pending(&mut m);
            }
            let s = e.stats();
            prop_assert_eq!(e.in_flight(), 0, "the queue drains");
            prop_assert_eq!(e.pending_ledger_bytes(), 0);
            prop_assert_eq!(s.enqueued_bytes, s.committed_bytes + s.dropped_bytes);
            prop_assert_eq!(m.active_watches(), 0, "no settled entry leaks its watch");
        }
    );
}

/// An MTM run with any admission policy and shadow mode produces a
/// bit-identical report for any packet worker count: admission verdicts
/// are a pure function of the deterministic machine state, never of how
/// the interval work was scheduled.
#[test]
fn admission_decisions_are_worker_count_invariant() {
    use mtm::{AdmissionKind, MtmConfig, MtmManager};
    use tiersim::sim::{run_scenario, Workload};
    use tiersim::tier::optane_four_tier;

    let run = |kind: AdmissionKind, shadow: bool, workers: usize| {
        let scale = 1u64 << 13;
        let topo = optane_four_tier(scale);
        let mut m = Machine::new(MachineConfig::new(topo.clone(), 2));
        let plan = faultsim::FaultPlan::parse("busy=0.2,allocfail=0.1").unwrap();
        m.install_faults(plan, faultsim::derive_seed(11, kind.label()));
        m.set_run_workers(workers);
        let mut cfg = MtmConfig::default();
        cfg.admission = kind;
        cfg.shadow = shadow;
        let mut mgr = MtmManager::new(cfg, topo.nodes as usize);
        let mut wl: Box<dyn Workload> =
            mtm_workloads::build_paper_workload("GUPS", scale, 2).unwrap();
        run_scenario(&mut m, &mut mgr, wl.as_mut(), 2)
    };
    for kind in [
        AdmissionKind::Always,
        AdmissionKind::PingPong,
        AdmissionKind::RateLimit,
        AdmissionKind::HotnessDelta,
    ] {
        for shadow in [false, true] {
            let serial = run(kind, shadow, 1);
            let packet = run(kind, shadow, 4);
            assert_eq!(
                format!("{serial:?}"),
                format!("{packet:?}"),
                "{}/shadow={shadow}: 4-worker report differs from serial",
                kind.label()
            );
        }
    }
}

/// The zipfian sampler is always in range and monotonically favours
/// low ranks in aggregate.
#[test]
fn zipfian_is_bounded_and_skewed() {
    prop_check!(
        "zipfian_is_bounded_and_skewed",
        64,
        gen::u64_range(0, 1000),
        |&seed| {
            let z = mtm_workloads::rng::Zipfian::new(10_000, 0.99);
            let mut rng = tiersim::rng::SplitMix64::new(seed);
            let mut low = 0u64;
            for _ in 0..512 {
                let r = z.sample(&mut rng);
                prop_assert!(r < 10_000);
                if r < 100 {
                    low += 1;
                }
            }
            prop_assert!(low > 64, "top-1% ranks draw a large share (got {low}/512)");
        }
    );
}

/// Global arbitration is invisible to a tenant when resources are ample:
/// a tenant co-scheduled with two others under per-round quota re-splits
/// behaves *bit-identically* to the same tenant alone on the whole
/// machine — same counters, same residency, same mapping, same committed
/// wall time. Arbitration may move the quota fences, never a tenant's
/// pages or another tenant's accounting.
#[test]
fn arbitration_preserves_tenant_isolation() {
    use tiersim::tenant::split_capacity;
    prop_check!(
        "arbitration_preserves_tenant_isolation",
        24,
        (
            // 5 arbitration points (initial + one per round) x 3 tenants.
            gen::vec(gen::f64_range(0.5, 2.0), 15),
            // Access offsets, sliced 8 per (round, tenant).
            gen::vec(gen::u64_range(0, 2048), 96),
        ),
        |(weights, offsets)| {
            let fast_cap = 128 * PAGE_SIZE_2M;
            let slow_cap = 128 * PAGE_SIZE_2M;
            let n = 3usize;
            let rounds = 4usize;
            let heap = VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M);
            let spawn = || {
                let mut m = Machine::new(MachineConfig::new(tiny_two_tier(fast_cap, slow_cap), 1));
                m.set_checking(true);
                m.mmap("heap", heap, false);
                m
            };
            let mut shared: Vec<Machine> = (0..n).map(|_| spawn()).collect();
            let mut solo: Vec<Machine> = (0..n).map(|_| spawn()).collect();
            // Initial grant before any page exists; min share is
            // 0.5/2.5 of 256M = 51M, far above the 8M footprints, so
            // quotas never bind and identity is provable, not a fluke.
            for c in 0..2u16 {
                let cap = if c == 0 { fast_cap } else { slow_cap };
                let quotas = split_capacity(cap, &weights[..n], &[0, 0, 0]);
                for (m, &q) in shared.iter_mut().zip(&quotas) {
                    m.set_component_quota(c, q);
                }
            }
            for m in shared.iter_mut().chain(solo.iter_mut()) {
                m.prefault_range(heap, &[0, 1]).unwrap();
            }
            for round in 0..rounds {
                for i in 0..n {
                    let slice = &offsets[(round * n + i) * 8..(round * n + i) * 8 + 8];
                    for &off in slice {
                        let va = VirtAddr(off * PAGE_SIZE_4K);
                        let kind = if off % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
                        shared[i].access(0, va, kind);
                        solo[i].access(0, va, kind);
                    }
                    let ws = shared[i].commit_interval();
                    let wo = solo[i].commit_interval();
                    prop_assert_eq!(ws, wo, "tenant {i} round {round}: wall time diverged");
                }
                // Re-split from this round's weights, floored at each
                // tenant's current residency.
                let w = &weights[(round + 1) * n..(round + 2) * n];
                for c in 0..2u16 {
                    let cap = if c == 0 { fast_cap } else { slow_cap };
                    let floors: Vec<u64> =
                        shared.iter().map(|m| m.allocator(c).used()).collect();
                    let quotas = split_capacity(cap, w, &floors);
                    let used: Vec<u64> = shared.iter().map(|m| m.allocator(c).used()).collect();
                    prop_assert!(
                        mtm_check::check_quota_partition(c, &quotas, &used, cap).is_empty(),
                        "round {round}: quota partition violated"
                    );
                    for (m, &q) in shared.iter_mut().zip(&quotas) {
                        m.set_component_quota(c, q);
                    }
                }
                for i in 0..n {
                    prop_assert_eq!(
                        shared[i].counters().all(),
                        solo[i].counters().all(),
                        "tenant {i} round {round}: counters diverged from solo"
                    );
                    prop_assert_eq!(
                        shared[i].residency(),
                        solo[i].residency(),
                        "tenant {i} round {round}: residency diverged from solo"
                    );
                    prop_assert_eq!(
                        shared[i].page_table().mapped_bytes(),
                        solo[i].page_table().mapped_bytes(),
                        "tenant {i} round {round}: mapping diverged from solo"
                    );
                    shared[i].verify_consistency("isolation property");
                }
            }
        }
    );
}

/// Under arbitrary tenant arrive/depart/access churn, the per-component
/// quotas always partition the physical capacity exactly: every tenant's
/// residency fits its grant, and residency + free-within-quota sums to
/// the tier capacity after every re-split.
#[test]
fn quota_partition_conserves_capacity_under_churn() {
    use tiersim::tenant::split_capacity;
    prop_check!(
        "quota_partition_conserves_capacity_under_churn",
        24,
        (
            // Op stream: 0-1 arrive, 2 depart, 3-5 access burst.
            gen::vec(gen::u8_range(0, 6), 24),
            gen::vec(gen::u64_range(0, 1024), 96),
            // Weights for up to 6 live tenants at each of 24 steps.
            gen::vec(gen::f64_range(0.5, 2.0), 24 * 6),
        ),
        |(ops, offsets, weights)| {
            let fast_cap = 64 * PAGE_SIZE_2M;
            let slow_cap = 64 * PAGE_SIZE_2M;
            let max_tenants = 6usize;
            let heap = VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M);
            let spawn = || {
                let mut m = Machine::new(MachineConfig::new(tiny_two_tier(fast_cap, slow_cap), 1));
                m.set_checking(true);
                m.mmap("heap", heap, false);
                m.prefault_range(heap, &[0, 1]).unwrap();
                m
            };
            let mut tenants: Vec<Machine> = vec![spawn()];
            for (step, &op) in ops.iter().enumerate() {
                match op {
                    0 | 1 if tenants.len() < max_tenants => tenants.push(spawn()),
                    2 if tenants.len() > 1 => {
                        tenants.remove(op as usize % tenants.len());
                    }
                    _ => {
                        let t = op as usize % tenants.len();
                        for &off in &offsets[(step * 4) % 92..(step * 4) % 92 + 4] {
                            let va = VirtAddr(off * PAGE_SIZE_4K);
                            let kind =
                                if off % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
                            tenants[t].access(0, va, kind);
                        }
                        tenants[t].commit_interval();
                    }
                }
                // Re-split after *every* churn event, then audit the
                // partition: sum(quota) == capacity, used <= quota, and
                // used + free-within-quota == capacity per component.
                let w = &weights[step * max_tenants..step * max_tenants + tenants.len()];
                for c in 0..2u16 {
                    let cap = if c == 0 { fast_cap } else { slow_cap };
                    let floors: Vec<u64> =
                        tenants.iter().map(|m| m.allocator(c).used()).collect();
                    let quotas = split_capacity(cap, w, &floors);
                    for (m, &q) in tenants.iter_mut().zip(&quotas) {
                        m.set_component_quota(c, q);
                    }
                    let used: Vec<u64> = tenants.iter().map(|m| m.allocator(c).used()).collect();
                    prop_assert!(
                        mtm_check::check_quota_partition(c, &quotas, &used, cap).is_empty(),
                        "step {step}: quota partition violated on component {c}"
                    );
                    let resident: u64 = used.iter().sum();
                    let free: u64 = quotas.iter().zip(&used).map(|(&q, &u)| q - u).sum();
                    prop_assert_eq!(
                        resident + free,
                        cap,
                        "step {step}: residency + free != capacity on component {c}"
                    );
                }
                for (i, m) in tenants.iter().enumerate() {
                    m.verify_consistency("churn property");
                    let _ = i;
                }
            }
        }
    );
}
