//! Hermetic-build policy enforcement.
//!
//! The build environment has no registry access, so every dependency in
//! the workspace must be an in-workspace `path` dependency (directly or
//! via `workspace = true` indirection into `[workspace.dependencies]`,
//! which is itself checked). A `rand = "0.8"`-style registry entry
//! anywhere would kill every build, test and bench — this test makes
//! that a loud, local failure instead of a resolver error.

use std::path::{Path, PathBuf};

/// Section headers whose entries declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || (h.starts_with("target.") && h.ends_with("dependencies"))
        || h.starts_with("dependencies.")
        || h.starts_with("dev-dependencies.")
        || h.starts_with("build-dependencies.")
        || h.starts_with("workspace.dependencies.")
}

/// A single declared dependency: where, what, and the spec text.
#[derive(Debug)]
struct Dep {
    manifest: PathBuf,
    name: String,
    spec: String,
}

impl Dep {
    /// A dependency is hermetic when it resolves inside the workspace:
    /// an inline `path = ...` table, or `workspace = true` indirection
    /// (the `[workspace.dependencies]` entries are themselves checked).
    fn is_hermetic(&self) -> bool {
        self.spec.contains("path =")
            || self.spec.contains("path=")
            || self.spec.contains("workspace = true")
            || self.spec.contains("workspace=true")
            || self.spec.trim_end().ends_with(".workspace = true")
    }
}

/// Minimal line-oriented scan of a manifest: tracks `[section]` headers
/// and collects `name = spec` lines inside dependency sections, plus
/// `[dependencies.<name>]` table-style declarations.
fn collect_deps(manifest: &Path) -> Vec<Dep> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    let mut table_dep: Option<Dep> = None;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(dep) = table_dep.take() {
                deps.push(dep);
            }
            in_dep_section = is_dependency_section(line);
            // `[dependencies.foo]` style: the whole table is one spec.
            if in_dep_section {
                let h = line.trim_matches(|c| c == '[' || c == ']');
                if let Some(name) = h
                    .strip_prefix("dependencies.")
                    .or_else(|| h.strip_prefix("dev-dependencies."))
                    .or_else(|| h.strip_prefix("build-dependencies."))
                    .or_else(|| h.strip_prefix("workspace.dependencies."))
                {
                    table_dep = Some(Dep {
                        manifest: manifest.to_path_buf(),
                        name: name.to_string(),
                        spec: String::new(),
                    });
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        if let Some(dep) = table_dep.as_mut() {
            dep.spec.push_str(line);
            dep.spec.push(' ');
        } else if let Some((name, spec)) = line.split_once('=') {
            deps.push(Dep {
                manifest: manifest.to_path_buf(),
                name: name.trim().to_string(),
                spec: format!("{} = {}", name.trim(), spec.trim()),
            });
        }
    }
    if let Some(dep) = table_dep.take() {
        deps.push(dep);
    }
    deps
}

/// Root manifest plus every `crates/*/Cargo.toml` (the workspace member
/// glob), discovered from the filesystem so a new crate is covered
/// automatically.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .unwrap_or_else(|e| panic!("read {}: {e}", crates.display()));
    for entry in entries {
        let manifest = entry.unwrap().path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    manifests.sort();
    manifests
}

#[test]
fn every_dependency_is_an_in_workspace_path() {
    let manifests = workspace_manifests();
    assert!(
        manifests.len() >= 10,
        "expected the root + >=9 crate manifests (incl. crates/faultsim), found {}",
        manifests.len()
    );
    let mut total = 0;
    let mut offenders = Vec::new();
    for manifest in &manifests {
        for dep in collect_deps(manifest) {
            total += 1;
            if !dep.is_hermetic() {
                offenders.push(format!(
                    "{}: `{}` is not a path/workspace dependency ({})",
                    dep.manifest.display(),
                    dep.name,
                    dep.spec.trim()
                ));
            }
        }
    }
    assert!(total > 10, "the scan found implausibly few dependencies ({total})");
    assert!(
        offenders.is_empty(),
        "registry dependencies break the offline build:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn workspace_dependency_paths_stay_inside_the_repo() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for manifest in workspace_manifests() {
        for dep in collect_deps(&manifest) {
            let Some(path_part) = dep.spec.split("path").nth(1) else { continue };
            let Some(value) = path_part.split('"').nth(1) else { continue };
            let resolved = manifest.parent().unwrap().join(value);
            let canonical = resolved
                .canonicalize()
                .unwrap_or_else(|e| panic!("`{}` path {value}: {e}", dep.name));
            assert!(
                canonical.starts_with(root.canonicalize().unwrap()),
                "`{}` escapes the workspace: {}",
                dep.name,
                canonical.display()
            );
        }
    }
}

#[test]
fn no_patch_or_git_sources() {
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).unwrap();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("");
            assert!(
                !line.contains("[patch"),
                "{}: [patch] sections are registry/git indirection",
                manifest.display()
            );
            assert!(
                !(line.contains("git =") || line.contains("git=\"")),
                "{}: git dependencies are not fetchable offline: {line}",
                manifest.display()
            );
        }
    }
}
