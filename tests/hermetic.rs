//! Hermetic-build policy enforcement — thin wrapper over lint rule H1.
//!
//! The actual checks (every dependency is an in-workspace `path` or
//! `workspace = true` entry, no `[patch]` sections, no git sources, no
//! path that escapes the repo) live in `mtm_lint::hermetic`, where
//! `bin/lint` also runs them as rule H1. This test keeps the policy on
//! the plain-`cargo test` path and pins the scan's coverage floor so a
//! refactor can't quietly scan nothing.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn hermetic_lint_rule_finds_no_violations() {
    let findings = mtm_lint::hermetic::scan_manifests(&workspace_root())
        .unwrap_or_else(|e| panic!("manifest scan failed: {e}"));
    assert!(
        findings.is_empty(),
        "registry/git dependencies break the offline build:\n  {}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n  ")
    );
}

#[test]
fn the_scan_covers_the_whole_workspace() {
    let root = workspace_root();
    let manifests = mtm_lint::hermetic::workspace_manifests(&root)
        .unwrap_or_else(|e| panic!("manifest discovery failed: {e}"));
    assert!(
        manifests.len() >= 12,
        "expected the root + >=11 crate manifests (incl. crates/lint and crates/check), found {}",
        manifests.len()
    );
    let total: usize = manifests
        .iter()
        .map(|m| {
            let text = std::fs::read_to_string(m).unwrap();
            mtm_lint::hermetic::collect_deps(&text).len()
        })
        .sum();
    assert!(total > 10, "the scan found implausibly few dependencies ({total})");
}

#[test]
fn the_rule_catches_a_registry_dependency() {
    // Seeded violation: the wrapper must stay wired to a rule that still
    // fires, not to a stub that always returns empty.
    let bad = "[dependencies]\nrand = \"0.8\"\nserde = { version = \"1\" }\n";
    let findings = mtm_lint::hermetic::check_manifest_text("crates/x/Cargo.toml", bad);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings[0].to_string().contains("H1/hermetic-dep"), "{}", findings[0]);
    assert!(findings[0].to_string().contains("`rand`"), "{}", findings[0]);
}
