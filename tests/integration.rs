//! Cross-crate integration tests: every manager on every workload at a
//! tiny scale, with system-level invariants checked on the results.

use mtm_harness::runs::{build_manager, machine_for, OVERALL_MANAGERS, WORKLOADS};
use mtm_harness::Opts;
use tiersim::sim::{run_scenario, RunReport};
use tiersim::tier::optane_four_tier;

fn tiny_opts() -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.intervals = 6;
    o.threads = 2;
    o.interval_ns = 1.0e6;
    o
}

fn run(manager: &str, workload: &str, opts: &Opts) -> RunReport {
    let topo = optane_four_tier(opts.scale);
    let mut machine = machine_for(manager, opts, topo.clone());
    let mut mgr = build_manager(manager, opts, &topo);
    let mut wl = mtm_workloads::build_paper_workload(workload, opts.scale, opts.threads)
        .expect("known workload");
    run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), opts.intervals)
}

#[test]
fn every_manager_runs_every_workload() {
    let opts = tiny_opts();
    for wl in WORKLOADS {
        for mgr in OVERALL_MANAGERS {
            let r = run(mgr, wl, &opts);
            assert!(r.total_ns > 0.0, "{mgr}/{wl}: time advanced");
            assert!(r.ops_completed > 0, "{mgr}/{wl}: work happened");
            assert_eq!(r.interval_ns.len(), opts.intervals as usize, "{mgr}/{wl}");
            // Residency never exceeds capacity and covers the footprint.
            let topo = optane_four_tier(opts.scale);
            let resident: u64 = r.residency.iter().sum();
            assert!(resident >= r.footprint, "{mgr}/{wl}: all pages stay mapped");
            for (c, &bytes) in r.residency.iter().enumerate() {
                assert!(
                    bytes <= topo.components[c].capacity,
                    "{mgr}/{wl}: component {c} within capacity"
                );
            }
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let opts = tiny_opts();
    let a = run("MTM", "GUPS", &opts);
    let b = run("MTM", "GUPS", &opts);
    assert_eq!(a.ops_completed, b.ops_completed);
    assert_eq!(a.total_ns.to_bits(), b.total_ns.to_bits());
    assert_eq!(a.residency, b.residency);
    assert_eq!(a.machine.pages_migrated, b.machine.pages_migrated);
}

#[test]
fn mtm_profiling_respects_overhead_constraint() {
    let opts = tiny_opts();
    for wl in WORKLOADS {
        let r = run("MTM", wl, &opts);
        let budget = opts.intervals as f64 * opts.interval_ns * 0.05;
        assert!(
            r.breakdown.profiling_ns <= budget * 1.5,
            "{wl}: profiling {:.0} within ~1.5x of the 5% budget {:.0}",
            r.breakdown.profiling_ns,
            budget
        );
    }
}

#[test]
fn mtm_promotes_hot_data_on_gups() {
    let mut opts = tiny_opts();
    opts.intervals = 20;
    let r = run("MTM", "GUPS", &opts);
    // The fastest component holds promoted data by the end.
    assert!(r.residency[0] > 0, "fast tier populated: {:?}", r.residency);
    assert!(r.machine.pages_migrated > 0);
    assert!(r.hot_bytes_identified > 0, "profiler classified something hot");
}

#[test]
fn first_touch_never_migrates() {
    let opts = tiny_opts();
    let r = run("first-touch", "Cassandra", &opts);
    assert_eq!(r.machine.pages_migrated, 0);
    assert_eq!(r.breakdown.migration_ns, 0.0);
    assert_eq!(r.breakdown.profiling_ns, 0.0);
}

#[test]
fn hmc_mode_keeps_dram_invisible() {
    let opts = tiny_opts();
    let r = run("hmc", "GUPS", &opts);
    // Memory Mode: nothing is ever *resident* in the DRAM components.
    assert_eq!(r.residency[0], 0);
    assert_eq!(r.residency[1], 0);
    assert!(r.component_counts[2].total() + r.component_counts[3].total() > 0);
}

#[test]
fn managed_systems_report_profiling_activity() {
    let opts = tiny_opts();
    for mgr in ["autonuma", "autotiering", "thermostat", "MTM"] {
        let r = run(mgr, "GUPS", &opts);
        assert!(
            r.breakdown.profiling_ns > 0.0,
            "{mgr} reports profiling time"
        );
    }
}

#[test]
fn mtm_region_stats_consistent() {
    let opts = tiny_opts();
    let r = run("MTM", "VoltDB", &opts);
    let rs = r.region_stats.expect("MTM exposes region stats");
    assert_eq!(rs.intervals, opts.intervals);
    assert!(rs.avg_regions >= 1.0);
    assert!(r.metadata_bytes > 0);
    // Table 5's headline: metadata is a vanishing fraction of the footprint.
    assert!((r.metadata_bytes as f64) < 0.01 * r.footprint as f64);
}

#[test]
fn two_tier_machines_run_mtm_and_hemem() {
    let opts = tiny_opts();
    let topo = tiersim::tier::two_tier(opts.scale);
    for mgr_name in ["MTM", "hemem"] {
        let mut machine = machine_for(mgr_name, &opts, topo.clone());
        let mut mgr = build_manager(mgr_name, &opts, &topo);
        let mut wl = mtm_workloads::build_paper_workload("GUPS", opts.scale, opts.threads).unwrap();
        let r = run_scenario(&mut machine, mgr.as_mut(), wl.as_mut(), 4);
        assert!(r.ops_completed > 0, "{mgr_name} on two tiers");
    }
}

#[test]
fn workload_access_mix_matches_table2() {
    let opts = tiny_opts();
    // Read-only workloads produce almost no stores after setup; 1:1
    // workloads produce a comparable number.
    let bfs = run("first-touch", "BFS", &opts);
    let stores: u64 = bfs.component_counts.iter().map(|c| c.stores).sum();
    let loads: u64 = bfs.component_counts.iter().map(|c| c.loads).sum();
    // Early traversal marks every vertex visited (one write each), so the
    // short test window shows a milder read dominance than steady state.
    assert!(loads > stores * 3 / 2, "BFS is read-dominated ({loads} loads / {stores} stores)");
    let gups = run("first-touch", "GUPS", &opts);
    let stores: u64 = gups.component_counts.iter().map(|c| c.stores).sum();
    let loads: u64 = gups.component_counts.iter().map(|c| c.loads).sum();
    let ratio = loads as f64 / stores.max(1) as f64;
    assert!((1.0..6.0).contains(&ratio), "GUPS mixes reads and writes (ratio {ratio:.2})");
}
