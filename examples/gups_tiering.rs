//! GUPS under four page-management systems.
//!
//! Runs the paper's GUPS workload (20 % hot set taking 80 % of updates)
//! under first-touch NUMA, tiered-AutoNUMA, HeMem and MTM on the same
//! four-tier machine, and prints the steady-state time per update — a
//! miniature of the paper's Fig. 4.
//!
//! ```sh
//! cargo run --release --example gups_tiering
//! ```

use mtm_harness::runs::run_pair;
use mtm_harness::Opts;

fn main() {
    let mut opts = Opts::quick();
    opts.scale = 1 << 12; // 1/4096 of the paper's machine: 128 MB GUPS table.
    opts.intervals = 30;
    opts.threads = 4;

    println!("GUPS, {} table, {} threads, {} intervals\n", "128MB", opts.threads, opts.intervals);
    println!("{:<22} {:>14} {:>14} {:>12}", "system", "ns/update", "steady ns/op", "vs first-touch");

    let mut base = None;
    for mgr in ["first-touch", "autonuma", "hemem", "MTM"] {
        let r = run_pair(mgr, "GUPS", &opts);
        let steady = r.ns_per_op_steady();
        let base_v = *base.get_or_insert(steady);
        println!(
            "{:<22} {:>14.1} {:>14.1} {:>11.2}x",
            r.manager,
            r.ns_per_op(),
            steady,
            steady / base_v
        );
    }
    println!("\nLower is better; MTM's adaptive profiling finds the hot set and");
    println!("promotes it to DRAM while first-touch strands most of it in PM.");
}
