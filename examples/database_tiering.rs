//! An in-memory database on tiered memory: TPC-C under MTM.
//!
//! Shows the public API for wiring a custom workload configuration and
//! inspecting MTM's internal state: region formation, hot-page volume and
//! the migration mechanism's async/sync split — the workload of the
//! paper's Fig. 7 and Tables 3/6.
//!
//! ```sh
//! cargo run --release --example database_tiering
//! ```

use mtm::{MtmConfig, MtmManager};
use mtm_workloads::{Tpcc, TpccConfig};
use tiersim::addr::fmt_bytes;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::run_scenario;
use tiersim::tier::optane_four_tier;

fn main() {
    let scale = 1 << 11; // 1/2048 of the paper's hardware.
    let threads = 4;
    let topology = optane_four_tier(scale);
    let mut mc = MachineConfig::new(topology.clone(), threads);
    mc.interval_ns = 2.0e6;
    let mut machine = Machine::new(mc);

    // A smaller TPC-C than the paper's 5 K warehouses, tuned by hand.
    let mut tpcc_cfg = TpccConfig::paper(scale, threads);
    tpcc_cfg.warehouses = 4;
    tpcc_cfg.remote_frac = 0.15;
    let mut workload = Tpcc::new(tpcc_cfg);

    let mut mtm_cfg = MtmConfig::default().with_paper_promote_budget(scale);
    mtm_cfg.overhead_target = 0.05;
    let mut manager = MtmManager::new(mtm_cfg, topology.nodes as usize);

    let report = run_scenario(&mut machine, &mut manager, &mut workload, 40);

    println!("TPC-C on a four-tier machine (scale 1/{scale})");
    println!("footprint          : {}", fmt_bytes(report.footprint));
    println!("transactions       : {}", report.ops_completed);
    println!("time per txn       : {:.2} us", report.ns_per_op() / 1e3);
    println!("steady time per txn: {:.2} us", report.ns_per_op_steady() / 1e3);

    let stats = manager.profiler().stats();
    println!("\nprofiling (Sec. 5):");
    println!("  intervals        : {}", stats.intervals);
    println!("  sample budget    : {} pages/interval (Eq. 1)", stats.last_num_ps);
    println!("  regions (avg)    : {:.0}", stats.region_count_sum as f64 / stats.intervals.max(1) as f64);
    println!("  merged / split   : {} / {}", stats.merged, stats.split);
    println!("  hot volume (avg) : {}", fmt_bytes(stats.hot_bytes_sum / stats.intervals.max(1)));

    let mig = manager.migration_stats();
    println!("\nmigration (Sec. 7):");
    println!("  async clean      : {}", mig.async_clean);
    println!("  switched to sync : {}", mig.switched_sync);
    println!("  bytes moved      : {}", fmt_bytes(mig.bytes));

    println!("\nresidency by tier (node-0 view):");
    for rank in 0..topology.num_components() {
        let c = topology.component_at_rank(0, rank);
        println!(
            "  tier {} ({:5})   : {}",
            rank + 1,
            topology.components[c as usize].name,
            fmt_bytes(report.residency[c as usize])
        );
    }
}
