//! Quickstart: build a four-tier machine, run a skewed workload under
//! MTM, and print where the hot data ended up.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mtm::{MtmConfig, MtmManager};
use tiersim::addr::{fmt_bytes, VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::rng::SplitMix64;
use tiersim::sim::{run_scenario, MemEnv, Workload};
use tiersim::tier::optane_four_tier;

/// A minimal workload: 90 % of accesses hit the first quarter of a
/// 256 MB heap.
struct Skewed {
    heap: VaRange,
    rng: SplitMix64,
    ops: u64,
}

impl Workload for Skewed {
    fn name(&self) -> String {
        "skewed-90/10".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        env.machine().mmap("heap", self.heap, true);
        for page in self.heap.iter_pages_4k() {
            env.write(0, page);
        }
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        env.compute(tid, 400.0);
        let len = self.heap.len();
        let off = if self.rng.unit_f64() < 0.9 {
            self.rng.below(len / 4)
        } else {
            len / 4 + self.rng.below(3 * len / 4)
        };
        env.read(tid, VirtAddr(self.heap.start.0 + (off & !63)));
        self.ops += 1;
    }

    fn footprint(&self) -> u64 {
        self.heap.len()
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

fn main() {
    // The paper's two-socket Optane topology (Table 1), scaled 1/2048:
    // 48 MB DRAM + 378 MB PM per socket.
    let topology = optane_four_tier(2048);
    let mut config = MachineConfig::new(topology.clone(), 4);
    config.interval_ns = 2.0e6; // One profiling interval = 2 ms of virtual time.
    let mut machine = Machine::new(config);

    // MTM with the paper's defaults: 5 % profiling overhead budget,
    // num_scans = 3, tau_m = 1, tau_s = 2, alpha = 1/2.
    let mut manager = MtmManager::new(MtmConfig::default(), topology.nodes as usize);

    let mut workload = Skewed {
        heap: VaRange::from_len(VirtAddr(0x1000_0000), 128 * PAGE_SIZE_2M),
        rng: SplitMix64::new(42),
        ops: 0,
    };

    let report = run_scenario(&mut machine, &mut manager, &mut workload, 40);

    println!("workload   : {}", report.workload);
    println!("manager    : {}", report.manager);
    println!("ops        : {} ({:.2} M ops/s virtual)", report.ops_completed, report.ops_per_second() / 1e6);
    println!(
        "time       : {:.2} ms app + {:.2} ms profiling + {:.2} ms migration",
        report.breakdown.app_ns / 1e6,
        report.breakdown.profiling_ns / 1e6,
        report.breakdown.migration_ns / 1e6
    );
    println!("residency  :");
    for (c, bytes) in report.residency.iter().enumerate() {
        let comp = &topology.components[c];
        println!("  tier {} ({:5}): {}", topology.tier_rank(0, c as u16) + 1, comp.name, fmt_bytes(*bytes));
    }
    println!(
        "promoted   : {} regions ({}), demoted {} regions",
        manager.policy_totals().promoted,
        fmt_bytes(manager.policy_totals().promoted_bytes),
        manager.policy_totals().demoted
    );
    let hot = manager.profiler().hot_bytes();
    println!("hot (EMA)  : {}", fmt_bytes(hot));
    assert!(report.residency[0] > 0, "the hot quarter was promoted into fast memory");
}
