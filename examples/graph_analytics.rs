//! Graph analytics on tiered memory: BFS over an R-MAT graph.
//!
//! Demonstrates the needle-in-a-haystack profiling problem the paper's
//! counter-assisted scan solves (Sec. 5.5): the hot visited/offsets
//! arrays are a few dozen MB inside over a gigabyte of streamed adjacency
//! data. Compares MTM with and without PEBS assistance.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use mtm::{MtmConfig, MtmManager};
use mtm_workloads::{Bfs, BfsConfig};
use tiersim::addr::fmt_bytes;
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::run_scenario;
use tiersim::tier::optane_four_tier;

fn run(pebs_assist: bool) -> (String, f64, u64) {
    let scale = 1 << 11;
    let threads = 4;
    let topology = optane_four_tier(scale);
    let mut mc = MachineConfig::new(topology.clone(), threads);
    mc.interval_ns = 2.0e6;
    let mut machine = Machine::new(mc);
    let mut cfg = MtmConfig::default().with_paper_promote_budget(scale);
    cfg.pebs_assist = pebs_assist;
    let mut manager = MtmManager::new(cfg, topology.nodes as usize);
    let mut workload = Bfs::new(BfsConfig::paper(scale, threads));
    let report = run_scenario(&mut machine, &mut manager, &mut workload, 40);
    // Bytes resident in the two DRAM components at the end.
    let dram: u64 = topology
        .dram_components()
        .into_iter()
        .map(|c| report.residency[c as usize])
        .sum();
    (report.manager.clone(), report.ns_per_op_steady(), dram)
}

fn main() {
    println!("BFS over an R-MAT graph (paper Table 2: 0.9B nodes / 14B edges, scaled)\n");
    let (name_on, t_on, dram_on) = run(true);
    let (name_off, t_off, dram_off) = run(false);
    println!("{:<16} {:>20} {:>16}", "system", "steady ns/vertex", "DRAM resident");
    println!("{:<16} {:>20.0} {:>16}", name_on, t_on, fmt_bytes(dram_on));
    println!("{:<16} {:>20.0} {:>16}", name_off, t_off, fmt_bytes(dram_off));
    println!("\nWith counter assistance MTM zooms onto the hot visited/offsets");
    println!("arrays immediately; without it, random sampling must stumble on");
    println!("them inside {} of cold adjacency data.", "~1GB");
}
