#!/usr/bin/env bash
# Tier-1 verification for the whole workspace.
#
# Bare `cargo test -q` at the root only runs the root package's ten
# integration tests and silently skips the ~180 unit tests living in the
# member crates — always verify with `--workspace`. The quick bench pass
# catches bench bit-rot (the bench harness compiles and runs end to end,
# emitting results/bench_*.json) without paying for real statistics.
#
# Usage: scripts/verify.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace

if [[ "${1:-}" != "--no-bench" ]]; then
    cargo bench -p mtm-bench -- --quick
fi

echo "verify: OK"
