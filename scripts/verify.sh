#!/usr/bin/env bash
# Tier-1 verification for the whole workspace.
#
# Bare `cargo test -q` at the root only runs the root package's ten
# integration tests and silently skips the ~180 unit tests living in the
# member crates — always verify with `--workspace`. The quick bench pass
# catches bench bit-rot (the bench harness compiles and runs end to end,
# emitting results/bench_*.json) without paying for real statistics.
#
# Usage: scripts/verify.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace

# Static analysis gate: the workspace lint (crates/lint) must report zero
# findings. Textual rules D1-D5 (wall-clock, unordered maps, entropy,
# non-exhaustive error enums, unwrap in migration code) and H1 (hermetic
# manifests), plus the semantic rules over the workspace call graph: D6
# determinism-taint reachability, D7 lock-order cycles, D8 panic-path
# closure, O1 obs-name audit and L1 bad-allow validation. The allowlist
# lives in lint.toml and inline `// lint:allow(...)` annotations. The
# gate consumes `--json` (machine-readable, stable field order), checks
# the seeded fixture corpus against its golden findings and the clean
# twin against zero, and holds the semantic pass to a <10s budget.
echo "==> workspace lint (bin/lint --json, fixture corpus, <10s budget)"
lint_out=$(mktemp)
lint_start=$(date +%s)
if ! cargo run --release -q -p mtm-lint --bin lint -- --json >"$lint_out"; then
    cat "$lint_out"
    rm -f "$lint_out"
    echo "verify: FAIL (lint findings, see above)"
    exit 1
fi
lint_elapsed=$(( $(date +%s) - lint_start ))
if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$lint_out" 2>/dev/null; then
    cat "$lint_out"
    rm -f "$lint_out"
    echo "verify: FAIL (lint --json emitted invalid JSON)"
    exit 1
fi
if cargo run --release -q -p mtm-lint --bin lint -- crates/lint/fixtures/corpus \
        >"$lint_out" 2>/dev/null; then
    rm -f "$lint_out"
    echo "verify: FAIL (seeded fixture corpus reported no findings)"
    exit 1
fi
if ! diff -u crates/lint/fixtures/corpus/expected.txt "$lint_out"; then
    rm -f "$lint_out"
    echo "verify: FAIL (corpus findings drifted from golden expected.txt)"
    exit 1
fi
rm -f "$lint_out"
if ! cargo run --release -q -p mtm-lint --bin lint -- crates/lint/fixtures/clean; then
    echo "verify: FAIL (clean fixture twin has findings)"
    exit 1
fi
if [ "$lint_elapsed" -ge 10 ]; then
    echo "verify: FAIL (semantic lint took ${lint_elapsed}s, budget is <10s)"
    exit 1
fi

if [[ "${1:-}" != "--no-bench" ]]; then
    cargo bench -p mtm-bench -- --quick
fi

# Parallel quick-mode smoke: run the whole harness (bin/all) on 4 workers.
# This exercises the worker pool, the single-flight run cache and the
# stderr diagnostics end to end. Any `warning:` line — an ignored env
# override, an n/a experiment row, a failed result write — fails verify.
echo "==> quick harness smoke (MTM_QUICK=1 MTM_JOBS=4)"
smoke_err=$(mktemp)
trap 'rm -f "$smoke_err" "$smoke_err.all" "$smoke_err.adm" "$smoke_err.mt1" "$smoke_err.mt4" "$smoke_err.sc1" "$smoke_err.sc4"' EXIT
if ! MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin all \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (bin/all smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on harness stderr, see above)"
    exit 1
fi
cp results/ALL.txt "$smoke_err.all"

# Sanitized smoke: the same quick matrix with the MTM_CHECK shadow-state
# sanitizer armed. Every migration commit/abort and every interval
# boundary re-verifies PTE<->frame consistency, tier occupancy and the
# obs counter/event books; a violation panics the run. The sanitizer is
# read-only, so results/ALL.txt must come out byte-identical to the
# unchecked run above.
echo "==> sanitized harness smoke (MTM_CHECK=1 MTM_QUICK=1 MTM_JOBS=4)"
if ! MTM_CHECK=1 MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin all \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (MTM_CHECK smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on MTM_CHECK smoke stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.all" results/ALL.txt; then
    echo "verify: FAIL (MTM_CHECK=1 perturbed results/ALL.txt)"
    exit 1
fi

# Packet-engine determinism: the same quick matrix with the intra-run
# worker pool fanned out to 4 packet workers. The interval loop's
# profiling scans and census sweeps reduce in packet order, so
# results/ALL.txt must come out byte-identical to the serial
# (MTM_RUN_WORKERS=1) run above regardless of thread scheduling.
echo "==> packet-engine smoke (MTM_RUN_WORKERS=4 MTM_QUICK=1 MTM_JOBS=4)"
if ! MTM_RUN_WORKERS=4 MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin all \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (MTM_RUN_WORKERS smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on MTM_RUN_WORKERS smoke stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.all" results/ALL.txt; then
    echo "verify: FAIL (MTM_RUN_WORKERS=4 perturbed results/ALL.txt)"
    exit 1
fi

# Telemetry smoke: the same quick matrix with MTM_TELEMETRY=1 must emit
# per-run JSON under results/telemetry/ that parses and carries the
# required top-level keys (telemetry_check validates every file). The
# warning: gate applies here too.
echo "==> telemetry smoke (MTM_TELEMETRY=1 MTM_QUICK=1 MTM_JOBS=4)"
rm -rf results/telemetry
if ! MTM_TELEMETRY=1 MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin all \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (telemetry smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on telemetry smoke stderr, see above)"
    exit 1
fi
if ! cargo run --release -q -p mtm-harness --bin telemetry_check; then
    echo "verify: FAIL (emitted telemetry is malformed)"
    exit 1
fi

# Resilience smoke: the fault-injection sweep (bin/resilience) across all
# managers in quick mode at the default seed (so the overwritten
# results/resilience.txt matches the committed artifact byte for byte).
# Exercises the FaultPlan parser, the retry/abort/deferral machinery and
# the robustness table end to end, with the shadow-state sanitizer armed
# so migration aborts are checked too; the warning: gate applies here.
echo "==> resilience smoke (MTM_CHECK=1 MTM_QUICK=1 MTM_JOBS=4)"
if ! MTM_CHECK=1 MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin resilience \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (resilience smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on resilience stderr, see above)"
    exit 1
fi

# Admission smoke: the admission-control/shadow-copy sweep
# (bin/admission) in quick mode. Three passes: MTM_JOBS=1 and MTM_JOBS=4
# must produce byte-identical results/admission.txt (the sweep seeds
# every cell from its own label, never from execution order), and a
# MTM_CHECK=1 pass must pass the sanitizer — shadow-copy retention
# changes the allocator books (used == mapped + shadow), so this is the
# cell where a broken shadow ledger would surface. The warning: gate
# applies to all three.
echo "==> admission smoke (MTM_QUICK=1, MTM_JOBS=1 vs 4, then MTM_CHECK=1)"
if ! MTM_QUICK=1 MTM_JOBS=1 cargo run --release -q -p mtm-harness --bin admission \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (admission smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on admission stderr, see above)"
    exit 1
fi
cp results/admission.txt "$smoke_err.adm"
if ! MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin admission \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (admission MTM_JOBS=4 smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on admission MTM_JOBS=4 stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.adm" results/admission.txt; then
    echo "verify: FAIL (results/admission.txt differs between MTM_JOBS=1 and 4)"
    exit 1
fi
if ! MTM_CHECK=1 MTM_QUICK=1 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin admission \
        >/dev/null 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (admission MTM_CHECK smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on admission MTM_CHECK stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.adm" results/admission.txt; then
    echo "verify: FAIL (MTM_CHECK=1 perturbed results/admission.txt)"
    exit 1
fi

# Multi-tenant smoke: the global-arbitration sweep (bin/multitenant)
# restricted to 2 tenants. The table must be byte-identical between
# MTM_JOBS=1 and MTM_JOBS=4 (cells and solo references are seeded from
# tenant/workload labels, never execution order), and an MTM_CHECK=1 pass
# arms the shadow-state sanitizer plus the per-tenant quota-partition
# census at every interval boundary without changing a byte. With
# MTM_TENANTS set the bin does not touch the committed
# results/multitenant.txt, so stdout is compared directly. The warning:
# gate applies to all three passes.
echo "==> multitenant smoke (MTM_QUICK=1 MTM_TENANTS=2, MTM_JOBS=1 vs 4, then MTM_CHECK=1)"
if ! MTM_QUICK=1 MTM_TENANTS=2 MTM_JOBS=1 cargo run --release -q -p mtm-harness --bin multitenant \
        >"$smoke_err.mt1" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (multitenant smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on multitenant stderr, see above)"
    exit 1
fi
if ! MTM_QUICK=1 MTM_TENANTS=2 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin multitenant \
        >"$smoke_err.mt4" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (multitenant MTM_JOBS=4 smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on multitenant MTM_JOBS=4 stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.mt1" "$smoke_err.mt4"; then
    echo "verify: FAIL (multitenant table differs between MTM_JOBS=1 and 4)"
    exit 1
fi
if ! MTM_CHECK=1 MTM_QUICK=1 MTM_TENANTS=2 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin multitenant \
        >"$smoke_err.mt4" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (multitenant MTM_CHECK smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on multitenant MTM_CHECK stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.mt1" "$smoke_err.mt4"; then
    echo "verify: FAIL (MTM_CHECK=1 perturbed the multitenant table)"
    exit 1
fi

# Scenario smoke: the serving-generator/churn sweep (bin/scenarios) at a
# short horizon. The table must be byte-identical between MTM_JOBS=1 and
# MTM_JOBS=4 and between MTM_RUN_WORKERS=1 and 4 (cells are pure
# functions of their labels; the churn cell steps tenants lock-step
# serial), and an MTM_CHECK=1 pass arms the sanitizer without changing a
# byte. Every full-sweep pass also exercises the checkpoint machinery:
# the bin saves the MTM/KVDrift cell mid-run, resumes it in fresh
# objects, and asserts the resumed report is byte-identical — a failed
# differential panics the run. With MTM_SCENARIO_INTERVALS set the bin
# does not touch the committed results/scenarios.txt, so stdout is
# compared directly. The warning: gate applies to all passes.
echo "==> scenario smoke (MTM_QUICK=1 MTM_SCENARIO_INTERVALS=12, MTM_JOBS/MTM_RUN_WORKERS 1 vs 4, then MTM_CHECK=1)"
if ! MTM_QUICK=1 MTM_SCENARIO_INTERVALS=12 MTM_JOBS=1 cargo run --release -q -p mtm-harness --bin scenarios \
        >"$smoke_err.sc1" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (scenario smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on scenario stderr, see above)"
    exit 1
fi
if ! MTM_QUICK=1 MTM_SCENARIO_INTERVALS=12 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin scenarios \
        >"$smoke_err.sc4" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (scenario MTM_JOBS=4 smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on scenario MTM_JOBS=4 stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.sc1" "$smoke_err.sc4"; then
    echo "verify: FAIL (scenario table differs between MTM_JOBS=1 and 4)"
    exit 1
fi
if ! MTM_QUICK=1 MTM_SCENARIO_INTERVALS=12 MTM_RUN_WORKERS=4 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin scenarios \
        >"$smoke_err.sc4" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (scenario MTM_RUN_WORKERS=4 smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on scenario MTM_RUN_WORKERS stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.sc1" "$smoke_err.sc4"; then
    echo "verify: FAIL (MTM_RUN_WORKERS=4 perturbed the scenario table)"
    exit 1
fi
if ! MTM_CHECK=1 MTM_QUICK=1 MTM_SCENARIO_INTERVALS=12 MTM_JOBS=4 cargo run --release -q -p mtm-harness --bin scenarios \
        >"$smoke_err.sc4" 2>"$smoke_err"; then
    cat "$smoke_err" >&2
    echo "verify: FAIL (scenario MTM_CHECK smoke run failed)"
    exit 1
fi
if grep -E '^warning:' "$smoke_err"; then
    echo "verify: FAIL (warning lines on scenario MTM_CHECK stderr, see above)"
    exit 1
fi
if ! cmp -s "$smoke_err.sc1" "$smoke_err.sc4"; then
    echo "verify: FAIL (MTM_CHECK=1 perturbed the scenario table)"
    exit 1
fi

echo "verify: OK"
